(* Per-op unit-cost calibration for the cost ledger.

   The ledger (Util.Counters) attributes every ciphertext operation to
   an (op kind, BGV level) cell; this pass measures how many seconds one
   operation of each kind costs at each level of a parameter set's
   modulus chain, producing the unit-cost table the analytic replica
   (Sknn_obs.Cost_model.predict_seconds) prices ledgers with:

     predicted_time = sum over cells of count * unit_cost.

   Measurements use the same adaptive-repetition loop as Kernel_bench
   (not shared: Kernel_bench is the library's main module, so it cannot
   be a dependency of this one).  The NTT census rows (ntt_fwd/ntt_inv)
   stay at zero on purpose: each composite op is measured end to end,
   NTT passes included, so pricing the census too would double-count
   them. *)

module C = Util.Counters

(* [costs.(C.op_index op).(level)] = seconds per op; row 0 of the
   level axis holds the level-free slot ops. *)
type t = float array array

(* Grow the repetition count until the timed loop runs for [target]
   seconds, then report the mean; two untimed calls warm the code and
   working set first. *)
let seconds ~target f =
  f ();
  f ();
  let rec go reps =
    let t0 = Util.Timer.now () in
    for _ = 1 to reps do
      f ()
    done;
    let elapsed = Util.Timer.now () -. t0 in
    if elapsed >= target || reps >= 100_000_000 then elapsed /. float_of_int reps
    else go (reps * 4)
  in
  go 1

(* Measurement window per op.  Quick mode keeps a full-chain calibration
   under a couple of seconds for CI; the default gives ~1% stable means
   on a quiet machine. *)
let target ~quick = if quick then 0.01 else 0.1

let measure ?(quick = false) ?rng (params : Params.t) : t =
  let rng = match rng with Some r -> r | None -> Util.Rng.create 1907L in
  let target = target ~quick in
  let sec f = seconds ~target f in
  let chain = Params.chain_length params in
  let costs = Array.make_matrix C.num_ops (Stdlib.max 1 chain + 1) 0.0 in
  let set op level s = costs.(C.op_index op).(level) <- s in
  let keys = Bgv.keygen rng params in
  let pt = Plaintext.constant params 123L in
  let fresh = Bgv.encrypt rng keys.Bgv.pk pt in
  (* Fresh encryption lands at the full chain level, but the protocol
     also encrypts directly at lower levels (Party B's Return-kNN
     indicators at return_level), so every level gets its own cell. *)
  for lvl = 1 to chain do
    set C.Op_encrypt lvl
      (sec (fun () -> ignore (Bgv.encrypt ~level:lvl rng keys.Bgv.pk pt)))
  done;
  (* Slot packing/unpacking is plaintext-side and level-free (row 0).
     to_slots caches its answer per plaintext, so the unpack measurement
     rebuilds an uncached (coefficient-born) plaintext each rep and
     subtracts the rebuild cost. *)
  let slots =
    Array.init (Params.slot_count params) (fun i -> Int64.of_int ((i mod 251) + 1))
  in
  set C.Op_slot_pack 0 (sec (fun () -> ignore (Plaintext.of_slots params slots)));
  let coeffs = Array.init params.Params.n (fun i -> Int64.of_int (i mod 5)) in
  let rebuild = sec (fun () -> ignore (Plaintext.of_coeffs params coeffs)) in
  let both =
    sec (fun () -> ignore (Plaintext.to_slots (Plaintext.of_coeffs params coeffs)))
  in
  set C.Op_slot_unpack 0 (Float.max 0.0 (both -. rebuild));
  (* Per-level ciphertexts come from repeated modulus switching, like
     the live pipeline, so their noise shrinks with the modulus.  The
     decrypt measurement is additionally guarded: levels whose modulus
     cannot hold the plaintext at all (the live path never decrypts
     there, so their ledger cells are always zero) stay at zero cost. *)
  let ladder = Array.make (chain + 1) fresh in
  for lvl = chain - 1 downto 1 do
    ladder.(lvl) <- Bgv.modswitch ladder.(lvl + 1)
  done;
  for lvl = 1 to chain do
    let ct = ladder.(lvl) in
    (try set C.Op_decrypt lvl (sec (fun () -> ignore (Bgv.decrypt keys.Bgv.sk ct)))
     with Bgv.Decryption_failure _ -> ());
    set C.Op_ct_add lvl (sec (fun () -> ignore (Bgv.add ct ct)));
    set C.Op_mul_plain lvl (sec (fun () -> ignore (Bgv.mul_plain ct pt)));
    set C.Op_ct_mul lvl (sec (fun () -> ignore (Bgv.mul ~rescale:false ct ct)));
    let deg2 = Bgv.mul ~rescale:false ct ct in
    set C.Op_key_switch lvl
      (sec (fun () -> ignore (Bgv.relinearize keys.Bgv.rlk deg2)));
    if lvl >= 2 then
      set C.Op_modswitch lvl (sec (fun () -> ignore (Bgv.modswitch ct)));
    (* A level drop records at its target level; dropping to the current
       level is a no-op the live path never records. *)
    if lvl < chain then
      set C.Op_level_drop lvl (sec (fun () -> ignore (Bgv.truncate_to_level fresh lvl)))
  done;
  costs

(* The census rows stay zero; everything else is worth printing. *)
let priced_ops =
  List.filter
    (fun op -> op <> C.Op_ntt_fwd && op <> C.Op_ntt_inv)
    (Array.to_list C.all_ops)

let pp ppf (costs : t) =
  let levels = Array.length costs.(0) - 1 in
  Format.fprintf ppf "%-12s" "op \\ level";
  for lvl = 0 to levels do
    Format.fprintf ppf " %9s" (if lvl = 0 then "slots" else Printf.sprintf "L%d" lvl)
  done;
  Format.fprintf ppf "@.";
  List.iter
    (fun op ->
      let row = costs.(C.op_index op) in
      if Array.exists (fun s -> s > 0.0) row then begin
        Format.fprintf ppf "%-12s" (C.op_name op);
        Array.iter
          (fun s ->
            if s > 0.0 then Format.fprintf ppf " %8.2fus" (s *. 1e6)
            else Format.fprintf ppf " %9s" "-")
          row;
        Format.fprintf ppf "@."
      end)
    priced_ops

(* ------------------------------------------------------------------ *)
(* Cache: measured tables persisted across invocations                 *)
(* ------------------------------------------------------------------ *)

(* A full calibration takes tens of seconds; `sknn cost`, `sknn plan`
   and `bench --json` all want the same table.  The cache file holds one
   JSON line per (params, quick) key, versioned and stamped with the git
   revision and machine fields.  A key match with a stale stamp is still
   usable — unit costs drift with the code and the host, not with the
   inputs — so mismatches produce warnings, not misses. *)

let cache_version = 1

(* The environment the table was measured in.  kernel_bench has no unix
   dependency, so the revision comes from the git CLI via a temp file;
   "unknown" outside a work tree. *)
let git_rev () =
  let tmp = Filename.temp_file "sknn-rev" ".txt" in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  let rc =
    try
      Sys.command
        (Printf.sprintf "git rev-parse --short HEAD > %s 2>/dev/null"
           (Filename.quote tmp))
    with Sys_error _ -> 1
  in
  let rev =
    if rc <> 0 then "unknown"
    else begin
      let ic = open_in tmp in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      close_in ic;
      if line = "" then "unknown" else line
    end
  in
  cleanup ();
  rev

let machine () =
  Printf.sprintf "%s/%d-bit/%d-domains" Sys.os_type Sys.word_size
    (Domain.recommended_domain_count ())

(* Minimal recursive-descent JSON reader, just enough for the cache's
   own lines: objects, arrays, strings (quote and backslash escapes),
   numbers, bools.  Report/check_regress have their own; this module
   cannot depend on either. *)
module Json = struct
  type v =
    | Obj of (string * v) list
    | Arr of v list
    | Str of string
    | Num of float
    | Bool of bool
    | Null

  exception Bad of string

  let parse (s : string) : v =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else raise (Bad (Printf.sprintf "expected %c at %d" c !pos))
    in
    let string_lit () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then raise (Bad "unterminated string")
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            if !pos + 1 >= n then raise (Bad "bad escape");
            (match s.[!pos + 1] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | 'n' -> Buffer.add_char buf '\n'
             | 't' -> Buffer.add_char buf '\t'
             | c -> Buffer.add_char buf c);
            pos := !pos + 2;
            go ()
          | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (string_lit ())
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (incr pos; Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let key = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; members ((key, v) :: acc)
            | Some '}' -> incr pos; Obj (List.rev ((key, v) :: acc))
            | _ -> raise (Bad "expected , or } in object")
          in
          members []
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (incr pos; Arr [])
        else begin
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; elements (v :: acc)
            | Some ']' -> incr pos; Arr (List.rev (v :: acc))
            | _ -> raise (Bad "expected , or ] in array")
          in
          elements []
        end
      | Some 't' -> pos := !pos + 4; Bool true
      | Some 'f' -> pos := !pos + 5; Bool false
      | Some 'n' -> pos := !pos + 4; Null
      | Some _ ->
        let start = !pos in
        while
          !pos < n
          && (match s.[!pos] with
              | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
              | _ -> false)
        do
          incr pos
        done;
        if !pos = start then raise (Bad "unexpected character");
        Num (float_of_string (String.sub s start (!pos - start)))
      | None -> raise (Bad "unexpected end of input")
    in
    let v = value () in
    skip_ws ();
    v

  let mem key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
  let str = function Some (Str s) -> Some s | _ -> None
  let num = function Some (Num f) -> Some f | _ -> None
  let booln = function Some (Bool b) -> Some b | _ -> None
  let arr = function Some (Arr l) -> Some l | _ -> None
end

(* The cache key: the table is only reusable for the shape it was
   measured at, and quick-pass tables are noisier than full ones, so the
   pass kind is part of the key. *)
let cache_key (params : Params.t) ~quick =
  (params.Params.name, params.Params.n, Params.chain_length params, quick)

let entry_key line =
  match
    ( Json.str (Json.mem "params" line),
      Json.num (Json.mem "n" line),
      Json.num (Json.mem "chain" line),
      Json.booln (Json.mem "quick" line) )
  with
  | Some name, Some n, Some chain, Some quick ->
    Some (name, int_of_float n, int_of_float chain, quick)
  | _ -> None

let read_cache_lines file =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in file in
    let rec go acc =
      match input_line ic with
      | exception End_of_file -> List.rev acc
      | line when String.trim line = "" -> go acc
      | line -> go (line :: acc)
    in
    let lines = go [] in
    close_in ic;
    lines
  end

let costs_of_entry (params : Params.t) line =
  let chain = Params.chain_length params in
  let costs = Array.make_matrix C.num_ops (Stdlib.max 1 chain + 1) 0.0 in
  let op_of_name name =
    Array.fold_left
      (fun acc op -> if String.equal (C.op_name op) name then Some op else acc)
      None C.all_ops
  in
  match Json.arr (Json.mem "ops" line) with
  | None -> None
  | Some ops ->
    let ok = ref true in
    List.iter
      (fun cell ->
        match
          ( Json.str (Json.mem "op" cell),
            Json.num (Json.mem "level" cell),
            Json.num (Json.mem "s" cell) )
        with
        | Some name, Some level, Some s ->
          (match op_of_name name with
           | Some op ->
             let level = int_of_float level in
             if level >= 0 && level <= chain then
               costs.(C.op_index op).(level) <- s
           | None -> ok := false)
        | _ -> ok := false)
      ops;
    if !ok then Some costs else None

(* Look the key up; [Ok] carries staleness warnings (git revision or
   machine drift) the caller should surface. *)
let load_cached ~file ?(quick = false) (params : Params.t) :
    (t * string list) option =
  let key = cache_key params ~quick in
  let find line =
    match Json.parse line with
    | exception Json.Bad _ -> None
    | v ->
      if Json.str (Json.mem "rec" v) <> Some "calibration-cache" then None
      else if Json.num (Json.mem "version" v) <> Some (float_of_int cache_version)
      then None
      else if entry_key v <> Some key then None
      else Some v
  in
  match List.filter_map find (read_cache_lines file) with
  | [] -> None
  | line :: _ ->
    (match costs_of_entry params line with
     | None -> None
     | Some costs ->
       let warn field now =
         match Json.str (Json.mem field line) with
         | Some v when not (String.equal v now) ->
           [ Printf.sprintf
               "calibration cache %s: %s was %S, now %S — consider re-measuring \
                (delete the entry or the file)"
               file field v now ]
         | _ -> []
       in
       Some (costs, warn "git_rev" (git_rev ()) @ warn "machine" (machine ())))

let entry_json (params : Params.t) ~quick (costs : t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"rec\":\"calibration-cache\",\"version\":%d,\"git_rev\":%S,\"machine\":%S,\
        \"params\":%S,\"n\":%d,\"chain\":%d,\"quick\":%b,\"ops\":["
       cache_version (git_rev ()) (machine ()) params.Params.name params.Params.n
       (Params.chain_length params) quick);
  let first = ref true in
  Array.iter
    (fun op ->
      Array.iteri
        (fun lvl s ->
          if s > 0.0 then begin
            if not !first then Buffer.add_char buf ',';
            first := false;
            Buffer.add_string buf
              (Printf.sprintf "{\"op\":%S,\"level\":%d,\"s\":%.9g}" (C.op_name op) lvl s)
          end)
        costs.(C.op_index op))
    C.all_ops;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* Replace the entry for this key, keep every other line verbatim. *)
let store_cached ~file ?(quick = false) (params : Params.t) (costs : t) =
  let key = Some (cache_key params ~quick) in
  let others =
    List.filter
      (fun line ->
        match Json.parse line with
        | exception Json.Bad _ -> true
        | v -> entry_key v <> key)
      (read_cache_lines file)
  in
  let oc = open_out file in
  List.iter (fun line -> output_string oc (line ^ "\n")) others;
  output_string oc (entry_json params ~quick costs ^ "\n");
  close_out oc

(* The one entry point the verbs share: cache hit (with any staleness
   warnings), or measure and fill the cache. *)
let measure_cached ?(quick = false) ?rng ?file (params : Params.t) :
    t * string list =
  match file with
  | None -> (measure ~quick ?rng params, [])
  | Some file ->
    (match load_cached ~file ~quick params with
     | Some (costs, warnings) -> (costs, warnings)
     | None ->
       let costs = measure ~quick ?rng params in
       store_cached ~file ~quick params costs;
       (costs, []))

(* One JSON line per table, parseable by Report/check_regress's minimal
   readers: {"rec":"calibration","ops":[{"op":...,"level":...,"s":...}]} *)
let to_json_line (costs : t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"rec\":\"calibration\",\"ops\":[";
  let first = ref true in
  List.iter
    (fun op ->
      Array.iteri
        (fun lvl s ->
          if s > 0.0 then begin
            if not !first then Buffer.add_char buf ',';
            first := false;
            Buffer.add_string buf
              (Printf.sprintf "{\"op\":%S,\"level\":%d,\"s\":%.9g}" (C.op_name op) lvl s)
          end)
        costs.(C.op_index op))
    priced_ops;
  Buffer.add_string buf "]}";
  Buffer.contents buf
