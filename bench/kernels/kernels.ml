(* Standalone kernel microbenchmark CLI: prints a table and optionally
   writes a JSON report (same record shape as the "kernels" block of
   the protocol bench JSON). *)

let emit_json oc results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"generator\":\"sknn-kernel-bench\",\"results\":[";
  List.iteri
    (fun i (r : Kernel_bench.result) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"kernel\":%S,\"n\":%d,\"prime_bits\":%d,\"ns_per_op\":%.3f,\"reps\":%d}"
           r.Kernel_bench.name r.Kernel_bench.ring_n r.Kernel_bench.prime_bits
           r.Kernel_bench.ns_per_op r.Kernel_bench.reps))
    results;
  Buffer.add_string buf "]}\n";
  output_string oc (Buffer.contents buf)

let run quick json =
  let results = Kernel_bench.run ~quick () in
  Format.printf "%a" Kernel_bench.pp_results results;
  (match json with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     emit_json oc results;
     close_out oc;
     Format.printf "wrote %d results to %s@." (List.length results) path);
  0

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shorter measurement windows (CI smoke).")

let json =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
         ~doc:"Write results as JSON to $(docv).")

let cmd =
  Cmd.v
    (Cmd.info "kernels" ~doc:"Microbenchmark the NTT/ring kernels")
    Term.(const run $ quick $ json)

let () = exit (Cmd.eval' cmd)
