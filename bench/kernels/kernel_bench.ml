(* Microbenchmarks for the ring kernels: NTT forward/inverse, the
   pointwise product kernels, Rq.mul and the fused Bgv.mul_sum.  Used
   by the standalone [kernels] executable and embedded as the
   ["kernels"] block of the protocol bench JSON, so kernel-level
   regressions are visible without a full protocol run. *)

type result = {
  name : string;      (* kernel name, e.g. "ntt-forward" *)
  ring_n : int;       (* transform size *)
  prime_bits : int;   (* modulus size (0 when spanning a chain) *)
  ns_per_op : float;  (* mean wall time per operation, nanoseconds *)
  reps : int;         (* measured repetitions *)
}

(* Grow the repetition count until the timed loop runs for [target]
   seconds, then report the mean.  Two untimed calls warm the code and
   touch the working set first. *)
let measure ~target f =
  f ();
  f ();
  let rec go reps =
    let t0 = Util.Timer.now () in
    for _ = 1 to reps do
      f ()
    done;
    let elapsed = Util.Timer.now () -. t0 in
    if elapsed >= target || reps >= 100_000_000 then
      (elapsed /. float_of_int reps *. 1e9, reps)
    else go (reps * 4)
  in
  go 1

let deterministic_residues rng ~n ~p = Array.init n (fun _ -> Util.Rng.int_below rng p)

let ntt_suite ~target rng ~n ~bits =
  let p =
    Int64.to_int
      (Prime64.find_ntt_prime ~congruent_mod:(Int64.of_int (2 * n)) ~bits ())
  in
  let tbl = Ntt.make_table ~p ~n in
  let a = deterministic_residues rng ~n ~p in
  let b = deterministic_residues rng ~n ~p in
  let dst = Array.make n 0 in
  let acc = Array.make n 0 in
  let bench name f =
    let ns, reps = measure ~target f in
    { name; ring_n = n; prime_bits = bits; ns_per_op = ns; reps }
  in
  [ bench "ntt-forward" (fun () -> Ntt.forward tbl a);
    bench "ntt-inverse" (fun () -> Ntt.inverse tbl a);
    bench "pointwise-mul" (fun () -> Ntt.pointwise_mul tbl dst a b);
    bench "pointwise-mul-acc" (fun () -> Ntt.pointwise_mul_acc tbl acc a b) ]

let rq_suite ~target rng ~n ~bits ~chain =
  let moduli =
    Prime64.ntt_primes ~congruent_mod:(Int64.of_int (2 * n)) ~bits ~count:chain
    |> List.map Int64.to_int |> Array.of_list
  in
  let ctx = Rq.context ~n ~moduli in
  let rand_rq () =
    Rq.of_int64_coeffs ctx ~nprimes:chain Rq.Eval
      (Array.init n (fun _ -> Util.Rng.int64_below rng 1024L))
  in
  let a = rand_rq () and b = rand_rq () in
  let acc = Rq.zero ctx ~nprimes:chain Rq.Eval in
  let bench name f =
    let ns, reps = measure ~target f in
    { name; ring_n = n; prime_bits = bits; ns_per_op = ns; reps }
  in
  [ bench "rq-mul" (fun () -> ignore (Rq.mul a b));
    bench "rq-mul-add-into" (fun () -> Rq.mul_add_into acc a b) ]

let mul_sum_suite ~target rng ~d =
  let params = Params.toy () in
  let keys = Bgv.keygen rng params in
  let enc v =
    Bgv.encrypt rng keys.Bgv.pk (Plaintext.constant params (Int64.of_int v))
  in
  let a = Array.init d (fun i -> enc (i + 1)) in
  let b = Array.init d (fun i -> enc (2 * i)) in
  let ns, reps = measure ~target (fun () -> ignore (Bgv.mul_sum ~jobs:1 a b)) in
  [ { name = Printf.sprintf "bgv-mul-sum-d%d" d;
      ring_n = params.Params.n;
      prime_bits = 0;
      ns_per_op = ns;
      reps } ]

(* Slot-packing kernels behind the SIMD protocol path: CRT packing and
   unpacking (one NTT over t each way) and the Galois machinery whose
   key-switch cost dominates any rotation-based variant. *)
let slot_suite ~target rng =
  let params = Params.toy () in
  let keys = Bgv.keygen rng params in
  let tp = params.Params.t_plain in
  let slots =
    Array.init (Params.slot_count params) (fun _ -> Util.Rng.int64_below rng tp)
  in
  let pt = Plaintext.of_slots params slots in
  let ct = Bgv.encrypt rng keys.Bgv.pk pt in
  let gk = Bgv.galois_keygen rng keys.Bgv.sk ~elt:3 in
  let gks = Bgv.slot_sum_keys rng keys.Bgv.sk in
  let bench name f =
    let ns, reps = measure ~target f in
    { name; ring_n = params.Params.n; prime_bits = 0; ns_per_op = ns; reps }
  in
  [ bench "plaintext-of-slots" (fun () -> ignore (Plaintext.of_slots params slots));
    bench "plaintext-to-slots" (fun () -> ignore (Plaintext.to_slots pt));
    bench "apply-galois" (fun () -> ignore (Bgv.apply_galois gk ct));
    bench "sum-slots" (fun () -> ignore (Bgv.sum_slots gks ct)) ]

let run ?(quick = false) () =
  let target = if quick then 0.05 else 0.4 in
  let rng = Util.Rng.create 42L in
  let sizes = if quick then [ 64; 1024 ] else [ 64; 1024; 4096 ] in
  List.concat_map (fun n -> ntt_suite ~target rng ~n ~bits:30) sizes
  @ rq_suite ~target rng ~n:64 ~bits:30 ~chain:10
  @ rq_suite ~target rng ~n:1024 ~bits:30 ~chain:4
  @ mul_sum_suite ~target rng ~d:32
  @ slot_suite ~target rng

let pp_results ppf results =
  Format.fprintf ppf "%-20s %8s %6s %14s %10s@." "kernel" "n" "bits" "ns/op" "reps";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-20s %8d %6d %14.1f %10d@." r.name r.ring_n r.prime_bits
        r.ns_per_op r.reps)
    results

(* Re-export: the library name matches this main module, so siblings are
   only reachable through it. *)
module Calibration = Calibration
