(** Shape-faithful substitutes for the paper's two UCI datasets.

    The sealed build environment cannot download from the UCI repository,
    so these generators reproduce each dataset's published *shape* — row
    count, dimensionality, and realistic per-column integer ranges after
    the paper's "non-negative integers only" preprocessing.  The paper's
    experiments measure running time as a function of n, d and k only,
    so shape fidelity is what matters for reproduction; to run on the
    real data, preprocess it to integer CSV and load with {!Csv_io}.

    Column models are documented in the implementation next to each
    generator. *)

type spec = {
  name : string;
  n : int;
  d : int;
  description : string;
}

val cervical_cancer_spec : spec
(** Cervical cancer (Risk Factors): 858 patients × 32 attributes. *)

val credit_default_spec : spec
(** Default of credit card clients: 30000 clients × 23 attributes. *)

val cervical_cancer : ?n:int -> Util.Rng.t -> int array array
(** [?n] overrides the row count (default 858) so scaled-down benchmark
    runs keep the column structure. *)

val credit_default : ?n:int -> Util.Rng.t -> int array array
(** Default 30000 rows. *)
