(** Minimal CSV reader/writer for integer matrices.

    The container has no network access, so the UCI files cannot be
    fetched at build time; this module lets a user drop the real
    preprocessed files in and run the exact experiments, while the
    {!Uci_like} generators provide shape-faithful substitutes.

    Format: one row per line, comma-separated decimal integers, optional
    single header line.  No quoting (the paper's preprocessed data is
    purely numeric). *)

val read : ?has_header:bool -> string -> int array array
(** [read path] loads a rectangular integer matrix.
    @raise Failure on ragged rows or non-integer fields. *)

val write : ?header:string list -> string -> int array array -> unit

val of_string : ?has_header:bool -> string -> int array array
val to_string : ?header:string list -> int array array -> string
