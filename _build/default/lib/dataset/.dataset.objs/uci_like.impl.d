lib/dataset/uci_like.ml: Array Option Util
