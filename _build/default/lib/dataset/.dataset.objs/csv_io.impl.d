lib/dataset/csv_io.ml: Array Buffer List Printf String
