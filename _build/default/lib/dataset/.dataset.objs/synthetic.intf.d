lib/dataset/synthetic.mli: Util
