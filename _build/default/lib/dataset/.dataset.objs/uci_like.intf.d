lib/dataset/uci_like.mli: Util
