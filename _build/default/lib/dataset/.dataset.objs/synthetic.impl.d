lib/dataset/synthetic.ml: Array Float Stdlib Util
