lib/dataset/preprocess.mli:
