lib/dataset/csv_io.mli:
