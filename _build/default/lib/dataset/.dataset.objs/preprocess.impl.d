lib/dataset/preprocess.ml: Array Distance Stdlib
