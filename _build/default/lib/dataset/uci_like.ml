module Rng = Util.Rng

type spec = { name : string; n : int; d : int; description : string }

let cervical_cancer_spec =
  { name = "cervical-cancer-risk-factors";
    n = 858;
    d = 32;
    description = "858 patients x 32 attributes: demographics, habits, historic medical records" }

let credit_default_spec =
  { name = "default-of-credit-card-clients";
    n = 30000;
    d = 23;
    description = "30000 clients x 23 attributes: credit, demographics, payment history" }

(* Column models: each column is (lo, hi, zero_inflation) — the value is 0
   with probability [zero_inflation], otherwise uniform on [lo, hi].  This
   mirrors the heavily zero-inflated indicator/count structure of the real
   files after integer preprocessing. *)

type column = { lo : int; hi : int; zero_p : float }

let col ?(zero_p = 0.0) lo hi = { lo; hi; zero_p }

let sample_column rng c =
  if c.zero_p > 0.0 && Rng.float rng < c.zero_p then 0 else Rng.int_range rng c.lo c.hi

let generate rng ~n columns =
  let columns = Array.of_list columns in
  Array.init n (fun _ -> Array.map (sample_column rng) columns)

(* Cervical cancer (Risk Factors), 32 attributes: age; sexual history
   counts; smoking (flag, years, packs); hormonal contraceptives (flag,
   years); IUD (flag, years); STD block (flag, count, 12 disease
   indicators, diagnosis counts and times); Dx block (4 indicators);
   screening outcomes (4 indicators).  Years/counts are stored as small
   integers after the paper's preprocessing. *)
let cervical_columns =
  [ col 13 84;                                (* age *)
    col 1 10;                                 (* number of sexual partners *)
    col 10 32;                                (* first sexual intercourse (age) *)
    col ~zero_p:0.3 0 11;                     (* num of pregnancies *)
    col ~zero_p:0.85 0 1;                     (* smokes *)
    col ~zero_p:0.85 0 37;                    (* smokes (years) *)
    col ~zero_p:0.85 0 37;                    (* smokes (packs/year) *)
    col ~zero_p:0.35 0 1;                     (* hormonal contraceptives *)
    col ~zero_p:0.35 0 30;                    (* hormonal contraceptives (years) *)
    col ~zero_p:0.9 0 1;                      (* IUD *)
    col ~zero_p:0.9 0 19;                     (* IUD (years) *)
    col ~zero_p:0.9 0 1;                      (* STDs *)
    col ~zero_p:0.9 0 4;                      (* STDs (number) *)
    col ~zero_p:0.95 0 1;                     (* STDs: condylomatosis *)
    col ~zero_p:0.97 0 1;                     (* STDs: cervical condylomatosis *)
    col ~zero_p:0.97 0 1;                     (* STDs: vaginal condylomatosis *)
    col ~zero_p:0.97 0 1;                     (* STDs: vulvo-perineal *)
    col ~zero_p:0.98 0 1;                     (* STDs: syphilis *)
    col ~zero_p:0.99 0 1;                     (* STDs: PID *)
    col ~zero_p:0.99 0 1;                     (* STDs: genital herpes *)
    col ~zero_p:0.99 0 1;                     (* STDs: molluscum *)
    col ~zero_p:0.99 0 1;                     (* STDs: HIV *)
    col ~zero_p:0.99 0 1;                     (* STDs: Hepatitis B *)
    col ~zero_p:0.99 0 1;                     (* STDs: HPV *)
    col ~zero_p:0.9 0 3;                      (* STDs: number of diagnoses *)
    col ~zero_p:0.9 0 22;                     (* time since first STD diagnosis *)
    col ~zero_p:0.9 0 22;                     (* time since last STD diagnosis *)
    col ~zero_p:0.97 0 1;                     (* Dx: cancer *)
    col ~zero_p:0.97 0 1;                     (* Dx: CIN *)
    col ~zero_p:0.97 0 1;                     (* Dx: HPV *)
    col ~zero_p:0.97 0 1;                     (* Dx *)
    col ~zero_p:0.95 0 1 ]                    (* biopsy outcome *)

(* Credit-card default, 23 attributes: LIMIT_BAL (scaled to thousands);
   sex/education/marriage codes; age; 6 monthly repayment statuses
   (shifted non-negative); 6 monthly bill amounts and 5 payment amounts
   (scaled to thousands, zero-inflated). *)
let credit_columns =
  [ col 10 800;                               (* LIMIT_BAL / 1000 *)
    col 1 2;                                  (* sex *)
    col 1 4;                                  (* education *)
    col 1 3;                                  (* marriage *)
    col 21 79;                                (* age *)
    col ~zero_p:0.5 0 10;                     (* PAY_0 (shifted) *)
    col ~zero_p:0.5 0 10;                     (* PAY_2 *)
    col ~zero_p:0.5 0 10;                     (* PAY_3 *)
    col ~zero_p:0.5 0 10;                     (* PAY_4 *)
    col ~zero_p:0.5 0 10;                     (* PAY_5 *)
    col ~zero_p:0.5 0 10;                     (* PAY_6 *)
    col ~zero_p:0.1 0 950;                    (* BILL_AMT1 / 1000 *)
    col ~zero_p:0.1 0 950;                    (* BILL_AMT2 *)
    col ~zero_p:0.1 0 950;                    (* BILL_AMT3 *)
    col ~zero_p:0.1 0 950;                    (* BILL_AMT4 *)
    col ~zero_p:0.1 0 950;                    (* BILL_AMT5 *)
    col ~zero_p:0.1 0 950;                    (* BILL_AMT6 *)
    col ~zero_p:0.25 0 800;                   (* PAY_AMT1 / 1000 *)
    col ~zero_p:0.25 0 800;                   (* PAY_AMT2 *)
    col ~zero_p:0.25 0 800;                   (* PAY_AMT3 *)
    col ~zero_p:0.25 0 800;                   (* PAY_AMT4 *)
    col ~zero_p:0.25 0 800;                   (* PAY_AMT5 *)
    col 0 1 ]                                 (* default next month *)

let cervical_cancer ?n rng =
  generate rng ~n:(Option.value ~default:cervical_cancer_spec.n n) cervical_columns

let credit_default ?n rng =
  generate rng ~n:(Option.value ~default:credit_default_spec.n n) credit_columns
