(** Dataset preprocessing: the paper's "non-negative integers only" step,
    plus range compression so squared distances fit the plaintext-modulus
    envelope of a given BGV parameter set. *)

val shift_non_negative : int array array -> int array array
(** Per-column shift by the column minimum, making every value >= 0. *)

val scale_to_max : max_value:int -> int array array -> int array array
(** Per-column affine min–max scaling into [\[0, max_value\]] (columns
    that are constant map to 0).  Preserves per-column value order; the
    relative geometry changes only by per-column quantisation, which is
    the standard integer-preprocessing trade-off. *)

val column_ranges : int array array -> (int * int) array
val max_abs_value : int array array -> int

val required_distance_bits : d:int -> max_value:int -> int
(** Bits needed to hold any squared Euclidean distance for [d]-dim
    points bounded by [max_value]. *)
