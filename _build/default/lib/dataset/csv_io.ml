let parse_line ~path ~lineno line =
  let fields = String.split_on_char ',' line in
  Array.of_list
    (List.map
       (fun f ->
         let f = String.trim f in
         match int_of_string_opt f with
         | Some v -> v
         | None ->
           failwith (Printf.sprintf "%s:%d: not an integer: %S" path lineno f))
       fields)

let of_lines ~path ~has_header lines =
  let lines = if has_header then List.tl lines else lines in
  let rows =
    List.filteri (fun _ l -> String.trim l <> "") lines
    |> List.mapi (fun i l -> parse_line ~path ~lineno:(i + 1) l)
  in
  let rows = Array.of_list rows in
  if Array.length rows > 0 then begin
    let d = Array.length rows.(0) in
    Array.iteri
      (fun i r ->
        if Array.length r <> d then
          failwith (Printf.sprintf "%s: ragged row %d (%d fields, expected %d)" path (i + 1)
                      (Array.length r) d))
      rows
  end;
  rows

let of_string ?(has_header = false) s =
  of_lines ~path:"<string>" ~has_header (String.split_on_char '\n' s)

let read ?(has_header = false) path =
  let ic = open_in path in
  let rec collect acc =
    match input_line ic with
    | line -> collect (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = collect [] in
  close_in ic;
  of_lines ~path ~has_header lines

let to_string ?header rows =
  let buf = Buffer.create 1024 in
  (match header with
   | Some h -> Buffer.add_string buf (String.concat "," h ^ "\n")
   | None -> ());
  Array.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (Array.to_list (Array.map string_of_int row)));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let write ?header path rows =
  let oc = open_out path in
  output_string oc (to_string ?header rows);
  close_out oc
