let column_ranges db =
  if Array.length db = 0 then [||]
  else begin
    let d = Array.length db.(0) in
    Array.init d (fun j ->
        let lo = ref db.(0).(j) and hi = ref db.(0).(j) in
        Array.iter
          (fun row ->
            if row.(j) < !lo then lo := row.(j);
            if row.(j) > !hi then hi := row.(j))
          db;
        (!lo, !hi))
  end

let shift_non_negative db =
  let ranges = column_ranges db in
  Array.map (fun row -> Array.mapi (fun j v -> v - fst ranges.(j)) row) db

let scale_to_max ~max_value db =
  if max_value < 0 then invalid_arg "Preprocess.scale_to_max";
  let ranges = column_ranges db in
  Array.map
    (fun row ->
      Array.mapi
        (fun j v ->
          let lo, hi = ranges.(j) in
          if hi = lo then 0
          else begin
            (* Round-to-nearest affine map onto [0, max_value]. *)
            let num = (v - lo) * max_value in
            let den = hi - lo in
            (num + (den / 2)) / den
          end)
        row)
    db

let max_abs_value db =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc v -> Stdlib.max acc (abs v)) acc row)
    0 db

let required_distance_bits ~d ~max_value =
  let m = Distance.max_squared_euclidean ~d ~max_value in
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  bits 0 m
