(** Synthetic workload generators.

    §5.2 of the paper evaluates scaling on data drawn from "a uniform
    random distribution"; {!uniform} reproduces that generator exactly.
    {!clustered} adds a Gaussian-mixture generator for the example
    applications (spatial search, medical cohorts), where k-NN answers on
    uniform data would be uninformative. *)

val uniform :
  Util.Rng.t -> n:int -> d:int -> max_value:int -> int array array
(** [n] points, [d] dimensions, coordinates i.i.d. uniform on
    [\[0, max_value\]]. *)

val clustered :
  Util.Rng.t ->
  n:int -> d:int -> clusters:int -> spread:float -> max_value:int ->
  int array array
(** Gaussian mixture: [clusters] uniformly placed centres, points
    assigned round-robin with N(centre, spread) noise, clamped to
    [\[0, max_value\]]. *)

val query_like : Util.Rng.t -> int array array -> int array
(** A random query point with per-column ranges matching the dataset
    (the paper "generate\[s\] a random data point to serve as the query
    point"). *)
