module Rng = Util.Rng

let uniform rng ~n ~d ~max_value =
  if n < 1 || d < 1 || max_value < 0 then invalid_arg "Synthetic.uniform";
  Array.init n (fun _ -> Array.init d (fun _ -> Rng.int_range rng 0 max_value))

let clustered rng ~n ~d ~clusters ~spread ~max_value =
  if clusters < 1 then invalid_arg "Synthetic.clustered";
  let centres =
    Array.init clusters (fun _ -> Array.init d (fun _ -> Rng.int_range rng 0 max_value))
  in
  Array.init n (fun i ->
      let c = centres.(i mod clusters) in
      Array.init d (fun j ->
          let v = Rng.gaussian rng ~mu:(float_of_int c.(j)) ~sigma:spread in
          let v = int_of_float (Float.round v) in
          Stdlib.max 0 (Stdlib.min max_value v)))

let query_like rng db =
  if Array.length db = 0 then invalid_arg "Synthetic.query_like: empty dataset";
  let d = Array.length db.(0) in
  Array.init d (fun j ->
      let lo = ref db.(0).(j) and hi = ref db.(0).(j) in
      Array.iter
        (fun row ->
          if row.(j) < !lo then lo := row.(j);
          if row.(j) > !hi then hi := row.(j))
        db;
      Rng.int_range rng !lo !hi)
