lib/core/kmeans.mli: Config Transcript Util
