lib/core/cost.ml: Format Protocol Transcript Util
