lib/core/masking.ml: Array Format Int64 Mod64 Printf Stdlib Util
