lib/core/entities.mli: Bgv Config Masking Util
