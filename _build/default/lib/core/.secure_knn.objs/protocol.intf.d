lib/core/protocol.mli: Config Entities Transcript Util
