lib/core/protocol.ml: Array Bgv Config Distance Entities List Params Plain_knn Printf Transcript Util
