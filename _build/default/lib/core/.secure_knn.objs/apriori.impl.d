lib/core/apriori.ml: Apriori_plain Array Bgv Config Int64 List Option Params Plaintext Printf Stdlib Transcript Util
