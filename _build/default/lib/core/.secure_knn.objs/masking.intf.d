lib/core/masking.mli: Format Util
