lib/core/config.mli: Format Params
