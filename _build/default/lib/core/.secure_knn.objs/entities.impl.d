lib/core/entities.ml: Array Bgv Config Int64 Masking Mod64 Option Params Plaintext Printf Stdlib Util
