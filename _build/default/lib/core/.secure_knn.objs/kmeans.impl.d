lib/core/kmeans.ml: Array Bgv Config Entities Int64 Kmeans_plain Masking Option Params Plaintext Printf Stdlib Transcript Util
