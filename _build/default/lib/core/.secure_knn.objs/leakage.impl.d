lib/core/leakage.ml: Array Entities Hashtbl Int64 List
