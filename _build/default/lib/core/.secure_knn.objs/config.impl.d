lib/core/config.ml: Distance Format Masking Params Printf
