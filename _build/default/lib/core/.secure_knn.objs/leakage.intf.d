lib/core/leakage.mli: Entities
