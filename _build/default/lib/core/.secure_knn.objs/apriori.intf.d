lib/core/apriori.mli: Config Transcript Util
