lib/core/cost.mli: Format Protocol
