(** Secure Apriori over encrypted transactions — the second §7
    future-work extension, and the one place the protocol layer uses the
    SHE's SIMD batching: transactions live in plaintext *slots*, so a
    candidate itemset's per-transaction membership bits come out of
    [|S| − 1] ciphertext multiplications *total*, independent of the
    number of transactions.

    Model: Party A stores, per item, slot-packed encryptions of that
    item's column. The client drives the levelwise mining and is
    entitled to the frequent itemsets (candidate generation therefore
    travels to A in the clear — A learns the mining lattice structure,
    a documented relaxation shared with the encrypted-mining
    literature); supports and per-transaction contents stay hidden from
    both clouds:

    + per level, A computes each candidate's encrypted membership-bit
      vector, scales it by a fresh secret [a], adds per-slot uniform
      masks [r_i], and sends the ciphertexts to B together with the
      masked threshold [a·minsup + Σ r_i], under a fresh permutation of
      the candidates;
    + B decrypts, sums each candidate's slots — obtaining
      [a·support + Σ r_i], which hides the support — and reports one
      comparison bit per (permuted) candidate to the client;
    + the client, who received the permutation from A, recovers which
      candidates are frequent and generates the next level.

    Leakage: A never sees a decryption; B learns only the number of
    candidates and how many pass per level (not which, not their
    supports, not any transaction bit — slots are uniformly masked). *)

type deployment

val deploy :
  ?rng:Util.Rng.t -> Config.t -> transactions:int array array -> deployment
(** Transactions are 0/1 rows. @raise Invalid_argument otherwise. *)

val item_count : deployment -> int
val transaction_count : deployment -> int

type result = {
  frequent : int list list;        (** in (size, lexicographic) order *)
  level_candidates : int array;    (** candidates tested per level *)
  level_frequent : int array;      (** survivors per level *)
  seconds : float;
  transcript : Transcript.t;
  counters_a : Util.Counters.t;
  counters_b : Util.Counters.t;
}

val mine :
  ?rng:Util.Rng.t -> ?max_size:int -> ?use_rotations:bool -> deployment ->
  minsup:int -> result
(** Levelwise mining up to itemsets of [max_size] (default 4).

    With [use_rotations] (default false), Party A additionally folds
    each candidate's support itself using relinearised products and the
    rotate-and-sum Galois primitive ({!Bgv.sum_slots}): B then receives a
    single scalar ciphertext per candidate — strictly less information
    (no per-slot view at all) and far less communication, at the cost of
    key-switching work at A.  Both variants return identical results. *)

val matches_plaintext :
  transactions:int array array -> minsup:int -> ?max_size:int -> result -> bool
(** The secure run finds exactly {!Apriori_plain.frequent_itemsets}'
    itemsets. *)
