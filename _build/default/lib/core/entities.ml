module Rng = Util.Rng
module Counters = Util.Counters
module Perm = Util.Perm

type encrypted_point = {
  coords : Bgv.ct array option;
  packed : Bgv.ct;
  norm : Bgv.ct option;
}

type encrypted_db = { db_n : int; db_d : int; points : encrypted_point array }

type encrypted_query = {
  q_coords : Bgv.ct array option;
  q_rev : Bgv.ct option;
  q_norm : Bgv.ct option;
  q_dim : int;
}

let ct_bytes = Bgv.byte_size

let point_bytes p =
  ct_bytes p.packed
  + (match p.coords with None -> 0 | Some a -> Array.fold_left (fun s c -> s + ct_bytes c) 0 a)
  + (match p.norm with None -> 0 | Some c -> ct_bytes c)

let db_bytes db = Array.fold_left (fun s p -> s + point_bytes p) 0 db.points

let query_bytes q =
  (match q.q_coords with None -> 0 | Some a -> Array.fold_left (fun s c -> s + ct_bytes c) 0 a)
  + (match q.q_rev with None -> 0 | Some c -> ct_bytes c)
  + (match q.q_norm with None -> 0 | Some c -> ct_bytes c)

(* Coefficient-packed plaintext for a point: p_j at coefficient j. *)
let packed_plaintext params point =
  let coeffs = Array.make params.Params.n 0L in
  Array.iteri (fun j v -> coeffs.(j) <- Int64.of_int v) point;
  Plaintext.of_coeffs params coeffs

(* Reversed query for the inner-product trick: constant term q_0, and
   -q_j at x^(n-j) for j >= 1, so that the constant coefficient of
   P(x)·Qrev(x) in Z_t[x]/(x^n+1) equals <p, q>. *)
let reversed_query_plaintext params query =
  let n = params.Params.n in
  let t = params.Params.t_plain in
  let coeffs = Array.make n 0L in
  Array.iteri
    (fun j v ->
      let v64 = Int64.of_int v in
      if j = 0 then coeffs.(0) <- Mod64.reduce t v64
      else coeffs.(n - j) <- Mod64.neg t (Mod64.reduce t v64))
    query;
  Plaintext.of_coeffs params coeffs

let squared_norm point = Array.fold_left (fun s v -> s + (v * v)) 0 point

(* ------------------------------------------------------------------ *)

module Data_owner = struct
  type t = { config : Config.t; keys : Bgv.keys }

  let create rng config = { config; keys = Bgv.keygen rng config.Config.bgv }
  let keys t = t.keys
  let config t = t.config

  let validate_point config ~d point =
    if Array.length point <> d then invalid_arg "Data_owner.encrypt_db: ragged data";
    let bound = 1 lsl config.Config.max_coord_bits in
    Array.iter
      (fun v ->
        if v < 0 || v >= bound then
          invalid_arg
            (Printf.sprintf
               "Data_owner.encrypt_db: coordinate %d outside [0, 2^%d) — preprocess the data \
                (Preprocess.scale_to_max)"
               v config.Config.max_coord_bits))
      point

  let encrypt_db ?counters rng t db =
    let config = t.config in
    let n_points = Array.length db in
    if n_points = 0 then invalid_arg "Data_owner.encrypt_db: empty database";
    let d = Array.length db.(0) in
    (match Config.validate config ~d with
     | Ok () -> ()
     | Error msg -> invalid_arg ("Data_owner.encrypt_db: " ^ msg));
    if d > config.Config.bgv.Params.n then
      invalid_arg "Data_owner.encrypt_db: dimension exceeds ring degree";
    let params = config.Config.bgv in
    let pk = t.keys.Bgv.pk in
    let enc pt = Bgv.encrypt ?counters rng pk pt in
    let points =
      Array.map
        (fun point ->
          validate_point config ~d point;
          let packed = enc (packed_plaintext params point) in
          match config.Config.layout with
          | Config.Per_coordinate ->
            let coords =
              Array.map (fun v -> enc (Plaintext.constant params (Int64.of_int v))) point
            in
            { coords = Some coords; packed; norm = None }
          | Config.Dot_product ->
            let norm = enc (Plaintext.constant params (Int64.of_int (squared_norm point))) in
            { coords = None; packed; norm = Some norm })
        db
    in
    { db_n = n_points; db_d = d; points }
end

(* ------------------------------------------------------------------ *)

module Party_a = struct
  type t = {
    config : Config.t;
    pk : Bgv.public_key;
    rlk : Bgv.relin_key;
    db : encrypted_db;
    counters : Counters.t;
  }

  let create config pk rlk db = { config; pk; rlk; db; counters = Counters.create () }
  let counters t = t.counters
  let db_size t = t.db.db_n

  type query_state = { mask : Masking.t; perm : Perm.t }

  let state_mask s = s.mask
  let state_perm s = s.perm

  let rlk_opt t = if t.config.Config.use_relin then Some t.rlk else None

  let encrypted_distance t query point =
    let counters = t.counters in
    match t.config.Config.layout, point.coords, query.q_coords with
    | Config.Per_coordinate, Some coords, Some q_coords ->
      (* ED = sum_j (p'_j - q'_j)^2, Steps 2-4 of Algorithm 1.  The
         per-dimension squares are left unrescaled; one rescale after
         the sum costs d-1 fewer modulus switches per point. *)
      let acc = ref None in
      Array.iteri
        (fun j c ->
          let diff = Bgv.sub ~counters c q_coords.(j) in
          let sq = Bgv.mul ~counters ?rlk:(rlk_opt t) ~rescale:false diff diff in
          acc := Some (match !acc with None -> sq | Some a -> Bgv.add ~counters a sq))
        coords;
      let ed = Option.get !acc in
      if t.config.Config.rescale_distances then Bgv.rescale_to_floor ~counters ed else ed
    | Config.Dot_product, _, _ ->
      let q_rev = Option.get query.q_rev and q_norm = Option.get query.q_norm in
      let norm = Option.get point.norm in
      (* ED = ||p||^2 - 2<p,q> + ||q||^2 in the constant coefficient. *)
      let ip = Bgv.mul ~counters ~rescale:false point.packed q_rev in
      Bgv.sub ~counters
        (Bgv.add ~counters norm q_norm)
        (Bgv.mul_scalar ~counters ip 2L)
    | Config.Per_coordinate, _, _ ->
      invalid_arg "Party_a.compute_distances: layout/ciphertext mismatch"

  (* A uniformly random polynomial with zero constant coefficient; added
     to Dot_product masked distances to destroy the cross-term
     coefficients the inner-product trick leaves behind. *)
  let zero_constant_randomizer rng params =
    let t = params.Params.t_plain in
    let coeffs =
      Array.init params.Params.n (fun i -> if i = 0 then 0L else Rng.int64_below rng t)
    in
    Plaintext.of_coeffs params coeffs

  let compute_distances t rng query =
    let config = t.config in
    let counters = t.counters in
    let d = t.db.db_d in
    if query.q_dim <> d then invalid_arg "Party_a.compute_distances: dimension mismatch";
    let mask =
      Masking.draw rng ~t_plain:config.Config.bgv.Params.t_plain
        ~input_bits:(Config.max_distance_bits config ~d)
        ~degree:config.Config.mask_degree
        ~coeff_bits:config.Config.mask_coeff_bits ()
    in
    let coeffs = Masking.coeffs mask in
    let masked =
      Array.map
        (fun point ->
          let ed = encrypted_distance t query point in
          let m = Bgv.eval_poly ~counters ?rlk:(rlk_opt t) ~coeffs ed in
          match config.Config.layout with
          | Config.Per_coordinate -> m
          | Config.Dot_product ->
            Bgv.add_plain ~counters m (zero_constant_randomizer rng config.Config.bgv))
        t.db.points
    in
    let perm = Perm.random rng t.db.db_n in
    ({ mask; perm }, Perm.apply perm masked)

  let return_level t =
    Stdlib.min t.config.Config.return_level (Params.chain_length t.config.Config.bgv)

  let select_row t permuted_packed row =
    (* T^j = Π(P')·B^j summed: one re-randomised encrypted point. *)
    let counters = t.counters in
    let acc = ref None in
    Array.iteri
      (fun i b ->
        let term = Bgv.mul ~counters ~rescale:false permuted_packed.(i) b in
        acc := Some (match !acc with None -> term | Some a -> Bgv.add ~counters a term))
      row;
    Option.get !acc

  let permuted_packed t state =
    let lvl = return_level t in
    Perm.apply state.perm
      (Array.map (fun p -> Bgv.truncate_to_level p.packed lvl) t.db.points)

  let return_knn t state rows =
    let packed = permuted_packed t state in
    Array.map (fun row -> select_row t packed row) rows
end

(* ------------------------------------------------------------------ *)

module Party_b = struct
  type t = {
    config : Config.t;
    sk : Bgv.secret_key;
    pk : Bgv.public_key;
    counters : Counters.t;
  }

  let create config sk pk = { config; sk; pk; counters = Counters.create () }
  let counters t = t.counters

  type view = { masked_distances : int64 array; selected : int array }

  let select_neighbours t cts ~k =
    let n = Array.length cts in
    if k < 1 || k > n then invalid_arg "Party_b: k out of range";
    let masked = Array.map (fun ct -> Bgv.decrypt_coeff0 ~counters:t.counters t.sk ct) cts in
    (* Algorithm 2: initialise NN with the first k values, then replace
       the running maximum on strict improvement. *)
    let nn = Array.sub masked 0 k in
    let nn_index = Array.init k (fun i -> i) in
    for i = k to n - 1 do
      let maxindex = ref 0 in
      for j = 1 to k - 1 do
        if Int64.compare nn.(j) nn.(!maxindex) > 0 then maxindex := j
      done;
      if Int64.compare masked.(i) nn.(!maxindex) < 0 then begin
        nn.(!maxindex) <- masked.(i);
        nn_index.(!maxindex) <- i
      end
    done;
    { masked_distances = masked; selected = nn_index }

  let return_level t =
    Stdlib.min t.config.Config.return_level (Params.chain_length t.config.Config.bgv)

  let indicator_row t rng view ~n ~j =
    let params = t.config.Config.bgv in
    let level = return_level t in
    let sel = view.selected.(j) in
    Array.init n (fun i ->
        let bit = if i = sel then 1L else 0L in
        Bgv.encrypt ~counters:t.counters ~level rng t.pk (Plaintext.constant params bit))

  let find_neighbours t rng cts ~k =
    let n = Array.length cts in
    let view = select_neighbours t cts ~k in
    let rows = Array.init k (fun j -> indicator_row t rng view ~n ~j) in
    (rows, view)
end

(* ------------------------------------------------------------------ *)

module Client = struct
  type t = {
    config : Config.t;
    sk : Bgv.secret_key;
    pk : Bgv.public_key;
    counters : Counters.t;
  }

  let create config sk pk = { config; sk; pk; counters = Counters.create () }
  let counters t = t.counters

  let encrypt_query t rng query =
    let config = t.config in
    let params = config.Config.bgv in
    let counters = t.counters in
    let d = Array.length query in
    Data_owner.validate_point config ~d query;
    match config.Config.layout with
    | Config.Per_coordinate ->
      let q_coords =
        Array.map
          (fun v -> Bgv.encrypt ~counters rng t.pk (Plaintext.constant params (Int64.of_int v)))
          query
      in
      { q_coords = Some q_coords; q_rev = None; q_norm = None; q_dim = d }
    | Config.Dot_product ->
      let q_rev = Bgv.encrypt ~counters rng t.pk (reversed_query_plaintext params query) in
      let q_norm =
        Bgv.encrypt ~counters rng t.pk
          (Plaintext.constant params (Int64.of_int (squared_norm query)))
      in
      { q_coords = None; q_rev = Some q_rev; q_norm = Some q_norm; q_dim = d }

  let decrypt_points t ~d cts =
    Array.map
      (fun ct ->
        let pt = Bgv.decrypt ~counters:t.counters t.sk ct in
        let coeffs = Plaintext.to_coeffs pt in
        Array.init d (fun j -> Int64.to_int coeffs.(j)))
      cts
end
