(** Monotonically increasing random masking polynomials — the paper's
    first novel ingredient (§3.4).

    Party A hides the true squared distances from Party B by evaluating a
    fresh random polynomial [m(x) = a_0 + a_1 x + … + a_D x^D] with
    positive random coefficients on every encrypted distance.  Order is
    preserved — so Party B can still select the k smallest — as long as
    the evaluation never wraps around the plaintext modulus [t]: the
    paper glosses over this, but with coefficients below [2^C] and inputs
    below [2^N] the envelope condition is

      C + D·N + log2(D + 1) < log2 t.

    {!max_coeff_bits} computes the largest sound [C]; {!draw} refuses
    unsound parameter combinations, making the implicit requirement
    explicit (see DESIGN.md, "Fidelity note"). *)

type t

val degree : t -> int
val coeffs : t -> int64 array
(** [a_0 … a_D], all in [\[1, 2^C)]. *)

val max_coeff_bits : t_plain:int64 -> input_bits:int -> degree:int -> int
(** Largest coefficient width [C >= 0] satisfying the envelope condition
    (0 means even unit coefficients overflow — the combination is
    unusable). *)

val draw :
  Util.Rng.t -> t_plain:int64 -> input_bits:int -> degree:int ->
  ?coeff_bits:int -> unit -> t
(** A fresh polynomial with coefficients uniform in [\[1, 2^C)], where
    [C] is [coeff_bits] clamped to {!max_coeff_bits}.
    @raise Invalid_argument if no positive-width coefficient is sound or
    [degree < 1]. *)

val eval : t -> int64 -> int64
(** Exact evaluation (no reduction); sound for inputs within the drawn
    envelope. *)

val eval_mod : t -> t_plain:int64 -> int64 -> int64
(** Evaluation mod [t] — what the homomorphic pipeline computes; equals
    {!eval} within the envelope (tested property). *)

val is_monotone_on : t -> max_input:int64 -> bool
(** True iff [eval] is strictly increasing on [\[0, max_input\]] (checked
    analytically: positive coefficients ⇒ monotone; retained as an
    executable sanity assertion). *)

val pp : Format.formatter -> t -> unit
