(** Executable leakage audit for the security guarantees of §4.

    Theorem 4.2 states Party B learns nothing beyond [k] and the number
    of equidistant points for the query.  This module extracts exactly
    the statistics B could compute from its view, so tests can check
    that (a) the admitted leakage is present — equidistant groups are
    visible — and (b) nothing else is: two databases with the same
    distance multiset produce views that are equal up to Party A's
    secret permutation, and the view reveals nothing about which
    database row produced which value. *)

val view_multiset : Entities.Party_b.view -> int64 array
(** The decrypted masked distances, sorted — the permutation-invariant
    part of Party B's view. *)

val equidistant_group_sizes : Entities.Party_b.view -> int array
(** Sizes (>1) of groups of equal masked distances — by monotonicity of
    the mask, exactly the groups of equidistant database points.  This
    is the paper's admitted leakage. *)

val equidistant_pairs : Entities.Party_b.view -> int
(** Number of unordered pairs of equidistant points B observes. *)

val recovers_true_order : Entities.Party_b.view -> int array -> bool
(** [recovers_true_order view true_dists] checks the protocol's
    correctness-critical invariant behind Theorem 4.2: the masked values
    B sees are a permutation of a strictly order-preserving image of the
    true distances (so B's top-k selection is correct even though the
    values themselves are hidden). *)

val mask_hides_values : Entities.Party_b.view -> int array -> bool
(** True when no masked value equals its true distance — a smoke check
    that the mask is actually applied (holds with overwhelming
    probability for non-trivial masks). *)
