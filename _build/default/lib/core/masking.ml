type t = { coeffs : int64 array }

let degree m = Array.length m.coeffs - 1
let coeffs m = Array.copy m.coeffs

let log2 x = log x /. log 2.0

let max_coeff_bits ~t_plain ~input_bits ~degree =
  if degree < 1 then invalid_arg "Masking.max_coeff_bits: degree < 1";
  (* Need (2^C - 1) * (D+1) * 2^(D*N) < t, i.e.
     C < log2 t - D*N - log2 (D+1). *)
  let budget =
    log2 (Int64.to_float t_plain)
    -. (float_of_int degree *. float_of_int input_bits)
    -. log2 (float_of_int (degree + 1))
  in
  Stdlib.max 0 (int_of_float (floor (budget -. 1e-9)))

let draw rng ~t_plain ~input_bits ~degree ?coeff_bits () =
  let sound = max_coeff_bits ~t_plain ~input_bits ~degree in
  let c =
    match coeff_bits with
    | None -> sound
    | Some c -> Stdlib.min c sound
  in
  if c < 1 then
    invalid_arg
      (Printf.sprintf
         "Masking.draw: no sound coefficient width for t=%Ld, %d input bits, degree %d \
          (reduce the degree or rescale the data)"
         t_plain input_bits degree);
  let upper = Int64.shift_left 1L c in
  let coeffs =
    Array.init (degree + 1) (fun _ ->
        Int64.succ (Util.Rng.int64_below rng (Int64.pred upper)))
  in
  { coeffs }

let eval m x =
  if Int64.compare x 0L < 0 then invalid_arg "Masking.eval: negative input";
  let d = degree m in
  let acc = ref m.coeffs.(d) in
  for i = d - 1 downto 0 do
    acc := Int64.add (Int64.mul !acc x) m.coeffs.(i)
  done;
  !acc

let eval_mod m ~t_plain x =
  let d = degree m in
  let x = Mod64.reduce t_plain x in
  let acc = ref (Mod64.reduce t_plain m.coeffs.(d)) in
  for i = d - 1 downto 0 do
    acc := Mod64.add t_plain (Mod64.mul t_plain !acc x) (Mod64.reduce t_plain m.coeffs.(i))
  done;
  !acc

let is_monotone_on m ~max_input =
  (* All coefficients positive ⇒ strictly increasing on x >= 0, provided
     evaluation at the endpoint does not overflow int64. *)
  Int64.compare max_input 0L >= 0
  && Array.for_all (fun a -> Int64.compare a 0L > 0) m.coeffs
  && Int64.compare (eval m max_input) 0L > 0

let pp ppf m =
  let d = degree m in
  Format.fprintf ppf "@[<h>";
  Array.iteri
    (fun i a ->
      if i = 0 then Format.fprintf ppf "%Ld" a
      else Format.fprintf ppf " + %Ld·x^%d" a i)
    m.coeffs;
  Format.fprintf ppf " (degree %d)@]" d
