(** Secure k-means over encrypted data — the paper's §7 future-work
    extension, built from the same ingredients as the k-NN protocol.

    Model and trust assumptions are unchanged: Party A stores the
    encrypted database ([Dot_product] layout), Party B holds the secret
    key, the client drives the iterations and is entitled to the output
    (the k centroids and cluster sizes).

    One Lloyd iteration:

    + the client encrypts the current centroids (reversed-query form)
      and sends them to Party A;
    + A computes, for every point, its k encrypted squared distances to
      the centroids, masks each point's row with a {e fresh per-point}
      monotone affine polynomial (so B can compare within a row but
      never across rows) and permutes each row's centroid positions with
      a fresh per-point permutation;
    + B decrypts each row, finds the argmin, and returns per-point
      one-hot indicator vectors over the (permuted) centroid slots;
    + A un-permutes, homomorphically aggregates per cluster the
      coordinate sums [Σ indicator·packed_point] and sizes
      [Σ indicator], and forwards the k aggregate pairs to the client;
    + the client decrypts and computes the rounded integer means —
      exactly {!Kmeans_plain.update} — so on tie-free instances the
      secure run reproduces the plaintext iterates bit for bit.

    Leakage: A sees only ciphertexts; B sees, per point, k masked
    distances in a per-point random order — it learns k, n, and
    per-point centroid-equidistance, but cannot compare rows (fresh
    masks) or track centroids across iterations (fresh permutations);
    the client learns the output it is entitled to (centroids and
    sizes). *)

type deployment

val deploy :
  ?rng:Util.Rng.t -> Config.t -> db:int array array -> deployment
(** Requires the [Dot_product] layout (affine masks; one multiplication
    per point-centroid pair). @raise Invalid_argument otherwise. *)

type result = {
  centroids : int array array;
  sizes : int array;
  iterations : int;
  converged : bool;
  seconds : float;
  transcript : Transcript.t;
  counters_a : Util.Counters.t;
  counters_b : Util.Counters.t;
}

val run :
  ?rng:Util.Rng.t -> ?max_iters:int -> deployment -> init:int array array -> result
(** Runs Lloyd iterations from the given plaintext initial centroids
    until the centroids are stable or [max_iters] (default 25).
    Empty clusters keep their previous centroid, as in
    {!Kmeans_plain.lloyd}. *)

val matches_plaintext :
  db:int array array -> init:int array array -> ?max_iters:int -> result -> bool
(** True iff the secure run's centroids equal {!Kmeans_plain.lloyd}'s on
    the same inputs (guaranteed on instances without point-to-centroid
    distance ties). *)
