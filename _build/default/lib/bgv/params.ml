
type t = {
  name : string;
  n : int;
  t_plain : int64;
  moduli : int array;
  eta : int;
  relin_digit_bits : int;
  ring : Rq.context;
  batching : Ntt64.table;
}

let create ?(eta = 2) ?(relin_digit_bits = 16) ~name ~n ~plain_bits ~prime_bits ~chain_len () =
  if plain_bits > 50 then invalid_arg "Params.create: plain_bits > 50";
  if prime_bits > 30 then invalid_arg "Params.create: prime_bits > 30";
  if n < 4 || n land (n - 1) <> 0 then invalid_arg "Params.create: n not a power of two";
  let m2n = Int64.of_int (2 * n) in
  let t_plain = Prime64.find_ntt_prime ~congruent_mod:m2n ~bits:plain_bits () in
  let moduli =
    Prime64.ntt_primes ~congruent_mod:m2n ~bits:prime_bits ~count:chain_len
    |> List.filter (fun p -> not (Int64.equal p t_plain))
    |> (fun l -> if List.length l < chain_len then
          Prime64.ntt_primes ~congruent_mod:m2n ~bits:prime_bits ~count:(chain_len + 1)
          |> List.filter (fun p -> not (Int64.equal p t_plain))
        else l)
    |> (fun l -> List.filteri (fun i _ -> i < chain_len) l)
    |> List.map Int64.to_int
    |> Array.of_list
  in
  let ring = Rq.context ~n ~moduli in
  let batching = Ntt64.make_table ~p:t_plain ~n in
  { name; n; t_plain; moduli; eta; relin_digit_bits; ring; batching }

let memo f =
  let cache = ref None in
  fun () ->
    match !cache with
    | Some v -> v
    | None ->
      let v = f () in
      cache := Some v;
      v

let toy =
  memo (fun () ->
      create ~name:"toy" ~n:256 ~plain_bits:20 ~prime_bits:27 ~chain_len:8 ())

let bench_small =
  memo (fun () ->
      create ~name:"bench_small" ~n:1024 ~plain_bits:40 ~prime_bits:30 ~chain_len:12 ())

let bench =
  memo (fun () ->
      create ~name:"bench" ~n:4096 ~plain_bits:45 ~prime_bits:30 ~chain_len:14 ())

let secure =
  memo (fun () ->
      create ~name:"secure" ~n:8192 ~plain_bits:40 ~prime_bits:30 ~chain_len:7 ())

let chain_length p = Array.length p.moduli

let log2_q p =
  Array.fold_left (fun acc m -> acc +. log (float_of_int m)) 0.0 p.moduli /. log 2.0

(* homomorphicencryption.org standard (ternary secret, classical):
   n = 1024 supports log2 q = 27 at 128-bit security, scaling linearly
   in n and inversely in log q. *)
let security_bits p = 128.0 *. (27.0 *. float_of_int p.n /. 1024.0) /. log2_q p

let slot_count p = p.n

let pp ppf p =
  Format.fprintf ppf
    "@[<v>%s: n=%d t=%Ld (%d bits) chain=%d primes (log2 q = %.0f) eta=%d w=%d est. security=%.0f bits@]"
    p.name p.n p.t_plain
    (int_of_float (ceil (log (Int64.to_float p.t_plain) /. log 2.0)))
    (chain_length p) (log2_q p) p.eta p.relin_digit_bits (security_bits p)
