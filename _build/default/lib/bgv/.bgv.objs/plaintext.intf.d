lib/bgv/plaintext.mli: Format Params
