lib/bgv/plaintext.ml: Array Format Mod64 Ntt64 Params Stdlib
