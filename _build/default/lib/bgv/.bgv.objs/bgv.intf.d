lib/bgv/bgv.mli: Format Params Plaintext Stdlib Util
