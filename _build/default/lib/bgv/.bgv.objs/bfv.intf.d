lib/bgv/bfv.mli: Format Params Plaintext Util
