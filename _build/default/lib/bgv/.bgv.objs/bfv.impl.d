lib/bgv/bfv.ml: Array Format Int64 Params Plaintext Rq Sampler Stdlib Util Zint
