lib/bgv/params.mli: Format Ntt64 Rq
