lib/bgv/bgv.ml: Array Buffer Bytes Crt Float Format Int32 Int64 List Mod64 Option Params Plaintext Printf Rq Sampler Stdlib Util Zint
