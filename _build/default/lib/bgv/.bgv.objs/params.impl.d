lib/bgv/params.ml: Array Format Int64 List Ntt64 Prime64 Rq
