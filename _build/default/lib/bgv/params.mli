(** BGV parameter sets.

    A parameter set fixes the ring degree [n], the plaintext prime [t]
    (chosen ≡ 1 mod 2n so that CRT batching gives [n] independent Z_t
    slots per ciphertext), the RNS modulus chain (NTT primes below 2^31),
    the centered-binomial noise width and the relinearisation digit size.

    The named presets trade ring size against speed:
    - [toy]: fast unit-test parameters (n = 256);
    - [bench_small], [bench]: the scaling-experiment parameters — the
      shape of every figure (linearity in n, d, k) is preserved while a
      full sweep stays tractable in OCaml;
    - [secure]: production-shaped ring (n = 8192) whose estimated RLWE
      security [security_bits] is ≈ 128, matching the paper's setting.

    Preset construction performs prime searches; results are memoised. *)

type t = private {
  name : string;
  n : int;                    (** ring degree, power of two *)
  t_plain : int64;            (** plaintext prime, ≡ 1 mod 2n *)
  moduli : int array;         (** RNS chain, most significant first *)
  eta : int;                  (** CBD noise parameter *)
  relin_digit_bits : int;     (** base-2^w key-switching decomposition *)
  ring : Rq.context;
  batching : Ntt64.table;
}

val create :
  ?eta:int ->
  ?relin_digit_bits:int ->
  name:string ->
  n:int ->
  plain_bits:int ->
  prime_bits:int ->
  chain_len:int ->
  unit ->
  t
(** Searches for the plaintext prime (largest ≡ 1 mod 2n below
    [2^plain_bits]) and [chain_len] distinct NTT primes of
    [prime_bits] bits. [plain_bits <= 50] (the fast 64-bit multiplier
    bound); [prime_bits <= 30]. *)

val toy : unit -> t
val bench_small : unit -> t
val bench : unit -> t
val secure : unit -> t

val chain_length : t -> int
val log2_q : t -> float
(** Bit size of the full ciphertext modulus. *)

val security_bits : t -> float
(** Rough RLWE security estimate from the homomorphicencryption.org
    standard tables (ternary secret, classical attacks): 128-bit security
    at [log2 q ≈ 27 · n / 1024], scaled linearly.  An estimate for
    reporting, not a guarantee. *)

val slot_count : t -> int
(** Number of CRT plaintext slots (= [n]). *)

val pp : Format.formatter -> t -> unit
