type t = int array
(* Invariant: a bijection on [0, n); cell i holds the image of i. *)

let identity n = Array.init n (fun i -> i)

let random rng n =
  let p = identity n in
  for i = n - 1 downto 1 do
    let j = Rng.int_below rng (i + 1) in
    let tmp = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- tmp
  done;
  p

let size = Array.length

let apply_index p i = p.(i)

let apply p a =
  let n = Array.length a in
  if n <> Array.length p then invalid_arg "Perm.apply: size mismatch";
  if n = 0 then [||]
  else begin
    let b = Array.make n a.(0) in
    for i = 0 to n - 1 do
      b.(p.(i)) <- a.(i)
    done;
    b
  end

let inverse p =
  let n = Array.length p in
  let q = Array.make n 0 in
  for i = 0 to n - 1 do
    q.(p.(i)) <- i
  done;
  q

let compose p q =
  let n = Array.length p in
  if n <> Array.length q then invalid_arg "Perm.compose: size mismatch";
  Array.init n (fun i -> p.(q.(i)))

let to_array p = Array.copy p

let of_array img =
  let n = Array.length img in
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n || seen.(v) then invalid_arg "Perm.of_array: not a bijection";
      seen.(v) <- true)
    img;
  Array.copy img

let equal p q = p = q

let pp ppf p =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    (Array.to_list p)
