(** Wall-clock timing helpers for the benchmark harness. *)

val now : unit -> float
(** Seconds since the epoch, monotonic enough for coarse protocol timing. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock seconds. *)

val pp_duration : Format.formatter -> float -> unit
(** Pretty-prints a duration like the paper's prose: ["45 s"],
    ["2 min 45 s"], ["373 ms"]. *)
