(** Uniform random permutations.

    Party A hides the correspondence between database rows and masked
    distances by drawing a fresh uniform permutation per query
    (Algorithm 1, step 9).  This module provides Fisher–Yates sampling,
    inversion, application to arrays, and composition. *)

type t
(** A permutation of [{0, …, n-1}]; [apply_index p i] is the image of [i]. *)

val identity : int -> t

val random : Rng.t -> int -> t
(** [random rng n] draws a permutation uniformly among the [n!] choices. *)

val size : t -> int

val apply_index : t -> int -> int
(** [apply_index p i] is [p(i)]. *)

val apply : t -> 'a array -> 'a array
(** [apply p a] returns [b] with [b.(p(i)) = a.(i)]: element [i] of the
    input lands at its image position. [Array.length a] must equal
    [size p]. *)

val inverse : t -> t

val compose : t -> t -> t
(** [compose p q] maps [i] to [p(q(i))]. *)

val to_array : t -> int array
(** Image table: [(to_array p).(i) = p(i)]. The returned array is fresh. *)

val of_array : int array -> t
(** [of_array img] validates that [img] is a bijection on its index set and
    returns the corresponding permutation.
    @raise Invalid_argument otherwise. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
