let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let x = f () in
  let t1 = now () in
  (x, t1 -. t0)

let pp_duration ppf s =
  if s < 1.0 then Format.fprintf ppf "%.0f ms" (s *. 1000.0)
  else if s < 60.0 then Format.fprintf ppf "%.1f s" s
  else
    let m = int_of_float (s /. 60.0) in
    let rest = s -. (float_of_int m *. 60.0) in
    Format.fprintf ppf "%d min %.0f s" m rest
