type t = float array array

let dims m = (Array.length m, if Array.length m = 0 then 0 else Array.length m.(0))

let identity n = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0))

let transpose m =
  let r, c = dims m in
  Array.init c (fun j -> Array.init r (fun i -> m.(i).(j)))

let mul a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ca <> rb then invalid_arg "Matf.mul: dimension mismatch";
  Array.init ra (fun i ->
      Array.init cb (fun j ->
          let acc = ref 0.0 in
          for k = 0 to ca - 1 do
            acc := !acc +. (a.(i).(k) *. b.(k).(j))
          done;
          !acc))

let mul_vec m v =
  let r, c = dims m in
  if c <> Array.length v then invalid_arg "Matf.mul_vec: dimension mismatch";
  Array.init r (fun i ->
      let acc = ref 0.0 in
      for k = 0 to c - 1 do
        acc := !acc +. (m.(i).(k) *. v.(k))
      done;
      !acc)

let vec_mul v m =
  let r, c = dims m in
  if r <> Array.length v then invalid_arg "Matf.vec_mul: dimension mismatch";
  Array.init c (fun j ->
      let acc = ref 0.0 in
      for k = 0 to r - 1 do
        acc := !acc +. (v.(k) *. m.(k).(j))
      done;
      !acc)

let dot a b =
  if Array.length a <> Array.length b then invalid_arg "Matf.dot: dimension mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

let inverse m =
  let n, c = dims m in
  if n <> c then invalid_arg "Matf.inverse: not square";
  (* Gauss-Jordan on [m | I] with partial pivoting. *)
  let a = Array.map Array.copy m in
  let inv = identity n in
  for col = 0 to n - 1 do
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!pivot).(col) then pivot := r
    done;
    if Float.abs a.(!pivot).(col) < 1e-9 then failwith "Matf.inverse: singular matrix";
    if !pivot <> col then begin
      let t = a.(col) in a.(col) <- a.(!pivot); a.(!pivot) <- t;
      let t = inv.(col) in inv.(col) <- inv.(!pivot); inv.(!pivot) <- t
    end;
    let scale = a.(col).(col) in
    for j = 0 to n - 1 do
      a.(col).(j) <- a.(col).(j) /. scale;
      inv.(col).(j) <- inv.(col).(j) /. scale
    done;
    for r = 0 to n - 1 do
      if r <> col && a.(r).(col) <> 0.0 then begin
        let factor = a.(r).(col) in
        for j = 0 to n - 1 do
          a.(r).(j) <- a.(r).(j) -. (factor *. a.(col).(j));
          inv.(r).(j) <- inv.(r).(j) -. (factor *. inv.(col).(j))
        done
      end
    done
  done;
  inv

let solve m b = mul_vec (inverse m) b

let max_abs_diff a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ra <> rb || ca <> cb then invalid_arg "Matf.max_abs_diff: dimension mismatch";
  let worst = ref 0.0 in
  Array.iteri
    (fun i row ->
      Array.iteri (fun j v -> worst := Float.max !worst (Float.abs (v -. b.(i).(j)))) row)
    a;
  !worst

let random rng n =
  let rec attempt () =
    let m = Array.init n (fun _ -> Array.init n (fun _ -> (Rng.float rng *. 2.0) -. 1.0)) in
    match inverse m with
    | inv ->
      (* Require a decent condition: M·M^-1 close to I. *)
      if max_abs_diff (mul m inv) (identity n) < 1e-6 then m else attempt ()
    | exception Failure _ -> attempt ()
  in
  attempt ()
