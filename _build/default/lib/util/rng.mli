(** Deterministic, splittable pseudo-random number generator.

    The whole repository derives randomness from this module so that every
    experiment, test and protocol transcript is reproducible from a seed.
    The generator is splitmix64 (Steele, Lea, Flood 2014): a 64-bit state
    advanced by a Weyl constant and finalised with a strong mixer.  It is
    not cryptographically secure; the protocol code treats it as an ideal
    source of randomness, which is the standard modelling assumption when
    reproducing protocol *performance and functionality* rather than
    deploying it. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator with the given seed. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> t
(** [split t] advances [t] and returns an independent generator whose
    stream does not overlap with [t]'s (in the splitmix64 sense). *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then produce the
    same stream. *)

val bits64 : t -> int64
(** [bits64 t] returns 64 uniform pseudo-random bits. *)

val int64_below : t -> int64 -> int64
(** [int64_below t bound] is uniform in [\[0, bound)]. [bound] must be
    positive. Uses rejection sampling, so there is no modulo bias. *)

val int_below : t -> int -> int
(** [int_below t bound] is uniform in [\[0, bound)] for positive [bound]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val bool : t -> bool
(** One uniform bit. *)

val float : t -> float
(** Uniform in [\[0, 1)], 53 bits of precision. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box–Muller Gaussian sample. *)

val bytes : t -> int -> Stdlib.Bytes.t
(** [bytes t n] returns [n] uniform pseudo-random bytes. *)
