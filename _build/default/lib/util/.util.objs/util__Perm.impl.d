lib/util/perm.ml: Array Format Rng
