lib/util/matf.mli: Rng
