lib/util/perm.mli: Format Rng
