lib/util/rng.mli: Stdlib
