lib/util/rng.ml: Char Float Int64 Stdlib
