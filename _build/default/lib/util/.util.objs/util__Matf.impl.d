lib/util/matf.ml: Array Float Rng
