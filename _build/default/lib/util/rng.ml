type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

(* splitmix64 finaliser: xor-shift-multiply chain with full avalanche. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  (* A second mixing round decorrelates the child stream from the parent. *)
  create (mix (Int64.logxor seed 0xA0761D6478BD642FL))

let copy t = { state = t.state }

let int64_below t bound =
  if Int64.compare bound 0L <= 0 then invalid_arg "Rng.int64_below: bound <= 0";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let rec loop () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound in
    (* Accept unless r falls in the final partial block. *)
    if Int64.compare (Int64.sub r v) (Int64.sub Int64.max_int (Int64.sub bound 1L)) > 0
    then loop ()
    else v
  in
  loop ()

let int_below t bound =
  if bound <= 0 then invalid_arg "Rng.int_below: bound <= 0";
  Int64.to_int (int64_below t (Int64.of_int bound))

let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: hi < lo";
  lo + int_below t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t =
  (* 53 top bits, scaled into [0,1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0)

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t in
    if u <= 0.0 then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let bytes t n =
  let b = Stdlib.Bytes.create n in
  for i = 0 to n - 1 do
    Stdlib.Bytes.set b i (Char.chr (int_below t 256))
  done;
  b
