(** Small dense float matrices — the linear-algebra substrate for the
    ASPE comparator (matrix-based scalar-product-preserving encryption)
    and its known-plaintext attack.

    Row-major [float array array]; all operations allocate fresh
    results.  Inversion is Gauss–Jordan with partial pivoting and raises
    [Failure] on (numerically) singular input. *)

type t = float array array

val identity : int -> t
val random : Rng.t -> int -> t
(** Entries uniform in [(-1, 1)], redrawn until comfortably invertible. *)

val dims : t -> int * int
val transpose : t -> t
val mul : t -> t -> t
val mul_vec : t -> float array -> float array
val vec_mul : float array -> t -> float array
val dot : float array -> float array -> float

val inverse : t -> t
(** @raise Failure on singular matrices. *)

val solve : t -> float array -> float array
(** [solve a b] returns [x] with [a·x = b]. *)

val max_abs_diff : t -> t -> float
