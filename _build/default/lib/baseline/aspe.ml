module Matf = Util.Matf

type key = { d : int; m_t : Matf.t; m_inv : Matf.t }

let keygen rng ~d =
  if d < 1 then invalid_arg "Aspe.keygen: d < 1";
  let m = Matf.random rng (d + 1) in
  { d; m_t = Matf.transpose m; m_inv = Matf.inverse m }

let dimension k = k.d

type enc_point = float array
type enc_query = float array

let extend_point p =
  let d = Array.length p in
  let norm2 = Array.fold_left (fun acc v -> acc +. (float_of_int v ** 2.0)) 0.0 p in
  Array.init (d + 1) (fun i ->
      if i < d then float_of_int p.(i) else -0.5 *. norm2)

let encrypt_point key p =
  if Array.length p <> key.d then invalid_arg "Aspe.encrypt_point: dimension mismatch";
  Matf.mul_vec key.m_t (extend_point p)

let encrypt_query rng key q =
  if Array.length q <> key.d then invalid_arg "Aspe.encrypt_query: dimension mismatch";
  let r = 0.5 +. Util.Rng.float rng in
  let extended = Array.init (key.d + 1) (fun i -> if i < key.d then float_of_int q.(i) else 1.0) in
  Array.map (fun v -> r *. v) (Matf.mul_vec key.m_inv extended)

let score p q = Matf.dot p q

let knn ~db ~query ~k =
  let n = Array.length db in
  if k < 1 || k > n then invalid_arg "Aspe.knn: k out of range";
  let order = Array.init n (fun i -> i) in
  let s = Array.map (fun p -> score p query) db in
  Array.sort
    (fun i j -> if s.(i) <> s.(j) then compare s.(j) s.(i) else compare i j)
    order;
  Array.sub order 0 k

let known_plaintext_attack ~pairs =
  let count = Array.length pairs in
  if count < 1 then invalid_arg "Aspe.known_plaintext_attack: no pairs";
  let d = Array.length (fst pairs.(0)) in
  if count < d + 1 then
    invalid_arg
      (Printf.sprintf "Aspe.known_plaintext_attack: need %d pairs, got %d" (d + 1) count);
  (* Each pair gives a row of P·Mᵀᵀ = Ĉ with P the extended plaintexts:
     recover T = Mᵀ as P⁻¹·Ĉ, then decrypt via ĉ·T⁻¹. *)
  let p_rows = Array.init (d + 1) (fun i -> extend_point (fst pairs.(i))) in
  let c_rows = Array.init (d + 1) (fun i -> Array.copy (snd pairs.(i))) in
  let p_inv = Matf.inverse p_rows in
  let t = Matf.mul p_inv c_rows in
  let t_inv = Matf.inverse t in
  fun ct ->
    let extended = Matf.vec_mul ct t_inv in
    Array.init d (fun i -> int_of_float (Float.round extended.(i)))
