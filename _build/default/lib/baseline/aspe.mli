(** ASPE — Asymmetric Scalar-Product-preserving Encryption (Wong et al.,
    SIGMOD 2009), the second comparator in the paper's related work.

    The scheme hides points behind a secret invertible matrix [M]:

      point:  p̂ = Mᵀ · (p₁, …, p_d, −½‖p‖²)
      query:  q̂ = r · M⁻¹ · (q₁, …, q_d, 1),  r > 0 fresh per query

    so that [p̂ · q̂ = r·(p·q − ½‖p‖²)], whose order over the database
    equals the (reversed) order of squared Euclidean distances to [q] —
    the server can run k-NN on "encrypted" data with plain dot
    products, no homomorphic operations and no second party.

    The paper (citing Yao et al., ICDE 2013) dismisses ASPE as
    vulnerable to known-plaintext attacks; {!known_plaintext_attack}
    makes that executable: [d + 1] known (plaintext, ciphertext) pairs
    recover the whole transform and decrypt every stored point.  The
    tests run both the functionality and the break. *)

type key

val keygen : Util.Rng.t -> d:int -> key
(** Key for [d]-dimensional data (a random invertible (d+1)×(d+1)
    matrix). *)

val dimension : key -> int

type enc_point = float array
type enc_query = float array

val encrypt_point : key -> int array -> enc_point
val encrypt_query : Util.Rng.t -> key -> int array -> enc_query

val score : enc_point -> enc_query -> float
(** Larger score = closer to the query. *)

val knn : db:enc_point array -> query:enc_query -> k:int -> int array
(** Server-side k-NN: indices of the k largest scores (ties to the
    lower index), sorted by rank. *)

val known_plaintext_attack :
  pairs:(int array * enc_point) array -> (enc_point -> int array)
(** Given [d + 1] linearly independent known pairs, returns a decryption
    oracle for arbitrary point ciphertexts (coordinates rounded back to
    integers). @raise Failure if the pairs are not independent. *)
