module Z = Zint
module Rng = Util.Rng
module Counters = Util.Counters

type ctx = {
  pk : Paillier.public_key;
  sk : Paillier.secret_key;
  rng : Rng.t;
  l : int;
  c1 : Counters.t;
  c2 : Counters.t;
  tr : Transcript.t;
}

let create ?rng ~sk ~pk ~l () =
  let rng = match rng with Some r -> r | None -> Rng.of_int 0xba5e in
  if Z.compare (Z.shift_left Z.one (l + 2)) (Paillier.modulus pk) >= 0 then
    invalid_arg "Smc.create: 2^(l+2) must stay below the Paillier modulus";
  { pk; sk; rng; l; c1 = Counters.create (); c2 = Counters.create (); tr = Transcript.create () }

let pk ctx = ctx.pk
let bit_length ctx = ctx.l
let counters_c1 ctx = ctx.c1
let counters_c2 ctx = ctx.c2
let transcript ctx = ctx.tr

let reset_stats ctx =
  Counters.reset ctx.c1;
  Counters.reset ctx.c2

let ct_bytes ctx = Paillier.byte_size ctx.pk

let send_c1_to_c2 ctx ~label ~count =
  Transcript.send ctx.tr ~sender:Transcript.Party_a ~receiver:Transcript.Party_b ~label
    ~bytes:(count * ct_bytes ctx)

let send_c2_to_c1 ctx ~label ~count =
  Transcript.send ctx.tr ~sender:Transcript.Party_b ~receiver:Transcript.Party_a ~label
    ~bytes:(count * ct_bytes ctx)

let encrypt_value ctx v = Paillier.encrypt_int ~counters:ctx.c1 ctx.rng ctx.pk v
let encrypt_value_c2 ctx v = Paillier.encrypt_int ~counters:ctx.c2 ctx.rng ctx.pk v
let decrypt_value ctx c = Paillier.decrypt_int ~counters:ctx.c2 ctx.sk c
let decrypt_zint_c2 ctx c = Paillier.decrypt ~counters:ctx.c2 ctx.sk c

let random_mask ctx = Z.random_below ctx.rng (Paillier.modulus ctx.pk)

(* Secure multiplication: C1 additively masks both operands; C2 decrypts
   the masked values and returns the encryption of their product; C1
   strips the cross terms homomorphically:
   (a+ra)(b+rb) - ra·b - rb·a - ra·rb = a·b. *)
let sm ctx ea eb =
  let pk = ctx.pk in
  let n = Paillier.modulus pk in
  (* C1 *)
  let ra = random_mask ctx and rb = random_mask ctx in
  let a' = Paillier.add ~counters:ctx.c1 pk ea (Paillier.encrypt ~counters:ctx.c1 ctx.rng pk ra) in
  let b' = Paillier.add ~counters:ctx.c1 pk eb (Paillier.encrypt ~counters:ctx.c1 ctx.rng pk rb) in
  send_c1_to_c2 ctx ~label:"SM masks" ~count:2;
  (* C2 *)
  let ha = Paillier.decrypt ~counters:ctx.c2 ctx.sk a' in
  let hb = Paillier.decrypt ~counters:ctx.c2 ctx.sk b' in
  let eh = Paillier.encrypt ~counters:ctx.c2 ctx.rng pk (Z.erem (Z.mul ha hb) n) in
  send_c2_to_c1 ctx ~label:"SM product" ~count:1;
  (* C1 *)
  let s = Paillier.sub ~counters:ctx.c1 pk eh (Paillier.mul_plain ~counters:ctx.c1 pk eb ra) in
  let s = Paillier.sub ~counters:ctx.c1 pk s (Paillier.mul_plain ~counters:ctx.c1 pk ea rb) in
  Paillier.add_plain ~counters:ctx.c1 pk s (Z.neg (Z.mul ra rb))

let ssed ctx p q =
  if Array.length p <> Array.length q then invalid_arg "Smc.ssed: dimension mismatch";
  let pk = ctx.pk in
  let acc = ref None in
  Array.iteri
    (fun j pj ->
      let diff = Paillier.sub ~counters:ctx.c1 pk pj q.(j) in
      let sq = sm ctx diff diff in
      acc := Some (match !acc with None -> sq | Some a -> Paillier.add ~counters:ctx.c1 pk a sq))
    p;
  Option.get !acc

(* Secure bit decomposition (Samanthula–Jiang style): one interaction
   per bit position, batched over the whole input array.  For each bit:
   C1 masks x with a random r < n/4 (no wrap since x < 2^l << n/4), C2
   returns the encrypted LSB of the masked value, C1 corrects by its
   known LSB of r and strips the bit off homomorphically. *)
let sbd ctx xs =
  let pk = ctx.pk in
  let n = Paillier.modulus pk in
  let quarter = Z.shift_right n 2 in
  let inv2 = Z.modinv Z.two n in
  let count = Array.length xs in
  let cur = Array.copy xs in
  let bits = Array.make_matrix count ctx.l (Z.of_int 0) in
  for bit = 0 to ctx.l - 1 do
    (* C1: mask every current value. *)
    let rs = Array.init count (fun _ -> Z.random_below ctx.rng quarter) in
    let masked =
      Array.mapi
        (fun i c ->
          Paillier.add ~counters:ctx.c1 pk c
            (Paillier.encrypt ~counters:ctx.c1 ctx.rng pk rs.(i)))
        cur
    in
    send_c1_to_c2 ctx ~label:(Printf.sprintf "SBD bit %d masks" bit) ~count;
    (* C2: decrypt and return each masked LSB. *)
    let y0s =
      Array.map
        (fun c ->
          let y = Paillier.decrypt ~counters:ctx.c2 ctx.sk c in
          Paillier.encrypt ~counters:ctx.c2 ctx.rng pk (if Z.is_even y then Z.zero else Z.one))
        masked
    in
    send_c2_to_c1 ctx ~label:(Printf.sprintf "SBD bit %d lsbs" bit) ~count;
    (* C1: x_0 = y_0 xor r_0 (r_0 is known plaintext), then shift. *)
    for i = 0 to count - 1 do
      let x0 =
        if Z.is_even rs.(i) then y0s.(i)
        else begin
          (* E(1 - y0) *)
          let neg = Paillier.mul_plain ~counters:ctx.c1 pk y0s.(i) (Z.pred n) in
          Paillier.add_plain ~counters:ctx.c1 pk neg Z.one
        end
      in
      bits.(i).(bit) <- x0;
      let stripped = Paillier.sub ~counters:ctx.c1 pk cur.(i) x0 in
      cur.(i) <- Paillier.mul_plain ~counters:ctx.c1 pk stripped inv2
    done
  done;
  bits

let bits_to_value ctx bits =
  let pk = ctx.pk in
  let acc = ref None in
  Array.iteri
    (fun i b ->
      let term = Paillier.mul_plain ~counters:ctx.c1 pk b (Z.shift_left Z.one i) in
      acc := Some (match !acc with None -> term | Some a -> Paillier.add ~counters:ctx.c1 pk a term))
    bits;
  Option.get !acc

(* Secure minimum of two bit-decomposed values.  C1 computes, per bit
   position i (MSB downward),
     W_i = a_i(1-b_i)            ("a wins at bit i")
     G_i = a_i xor b_i           ("bits differ at i")
     L_i = W_i + r·prefix_i + r'·(1-G_i)
   where prefix_i counts differing bits above i.  Exactly at the most
   significant differing position L = W in {0,1}; everywhere else L is
   uniformly random.  C2 decrypts the (position-permuted) L values and
   returns E(alpha) with alpha = [a > b] (or 0 when a = b).  A random
   swap of the operands hides from C2 which input won.  C1 then selects
   min_i = a_i + alpha·(b_i - a_i) bit-wise. *)
let smin ctx ubits vbits =
  let pk = ctx.pk in
  let n = Paillier.modulus pk in
  let l = ctx.l in
  if Array.length ubits <> l || Array.length vbits <> l then
    invalid_arg "Smc.smin: bit-length mismatch";
  (* C1: random swap. *)
  let a, b = if Rng.bool ctx.rng then (vbits, ubits) else (ubits, vbits) in
  let s = Array.init l (fun i -> sm ctx a.(i) b.(i)) in
  let w = Array.init l (fun i -> Paillier.sub ~counters:ctx.c1 pk a.(i) s.(i)) in
  let g =
    Array.init l (fun i ->
        let sum = Paillier.add ~counters:ctx.c1 pk a.(i) b.(i) in
        Paillier.sub ~counters:ctx.c1 pk sum (Paillier.mul_plain ~counters:ctx.c1 pk s.(i) Z.two))
  in
  (* prefix_i = sum of G_j for j > i, computed MSB-down. *)
  let prefix = Array.make l (Paillier.encrypt ~counters:ctx.c1 ctx.rng pk Z.zero) in
  for i = l - 2 downto 0 do
    prefix.(i) <- Paillier.add ~counters:ctx.c1 pk prefix.(i + 1) g.(i + 1)
  done;
  (* Masks in [2, n): never 0 (which would unmask) nor 1 (which could
     fake the 0/1 sentinel C2 looks for). *)
  let nonzero_mask () =
    Z.add Z.two (Z.random_below ctx.rng (Z.sub n Z.two))
  in
  let masked =
    Array.init l (fun i ->
        let term1 = Paillier.mul_plain ~counters:ctx.c1 pk prefix.(i) (nonzero_mask ()) in
        let one_minus_g =
          Paillier.add_plain ~counters:ctx.c1 pk
            (Paillier.mul_plain ~counters:ctx.c1 pk g.(i) (Z.pred n))
            Z.one
        in
        let term2 = Paillier.mul_plain ~counters:ctx.c1 pk one_minus_g (nonzero_mask ()) in
        Paillier.add ~counters:ctx.c1 pk w.(i) (Paillier.add ~counters:ctx.c1 pk term1 term2))
  in
  let pos_perm = Util.Perm.random ctx.rng l in
  let shuffled = Util.Perm.apply pos_perm masked in
  send_c1_to_c2 ctx ~label:"SMIN masked bits" ~count:l;
  (* C2: the single 0/1 among uniformly random values is alpha. *)
  let alpha = ref Z.zero in
  Array.iter
    (fun c ->
      let v = Paillier.decrypt ~counters:ctx.c2 ctx.sk c in
      if Z.is_zero v || Z.is_one v then alpha := v)
    shuffled;
  let ealpha = Paillier.encrypt ~counters:ctx.c2 ctx.rng pk !alpha in
  send_c2_to_c1 ctx ~label:"SMIN alpha" ~count:1;
  (* C1: min = a + alpha*(b - a), bit-wise; the swap needs no undoing
     because min(a,b) = min(u,v). *)
  Array.init l (fun i ->
      let diff = Paillier.sub ~counters:ctx.c1 pk b.(i) a.(i) in
      let sel = sm ctx ealpha diff in
      Paillier.add ~counters:ctx.c1 pk a.(i) sel)

let rec smin_n ctx values =
  match Array.length values with
  | 0 -> invalid_arg "Smc.smin_n: empty"
  | 1 -> values.(0)
  | len ->
    let half = len / 2 in
    let next =
      Array.init (half + (len mod 2)) (fun i ->
          if (2 * i) + 1 < len then smin ctx values.(2 * i) values.((2 * i) + 1)
          else values.(2 * i))
    in
    smin_n ctx next
