module Z = Zint
module Rng = Util.Rng

type deployment = {
  ctx : Smc.ctx;
  rng : Rng.t;
  enc_points : Paillier.ct array array; (* n x d *)
  n : int;
  d : int;
}

let bits_needed v =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let deploy ?rng ?(modulus_bits = 512) ?l ~db () =
  let rng = match rng with Some r -> r | None -> Rng.of_int 0xe1cde in
  let n = Array.length db in
  if n = 0 then invalid_arg "Sknn_m.deploy: empty database";
  let d = Array.length db.(0) in
  let max_coord =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc v ->
            if v < 0 then invalid_arg "Sknn_m.deploy: negative coordinate";
            Stdlib.max acc v)
          acc row)
      0 db
  in
  let l =
    match l with
    | Some l -> l
    | None -> 1 + bits_needed (Distance.max_squared_euclidean ~d ~max_value:max_coord)
  in
  let sk, pk = Paillier.keygen ~modulus_bits (Rng.split rng) in
  let ctx = Smc.create ~rng:(Rng.split rng) ~sk ~pk ~l () in
  let enc_points =
    Array.map (fun row -> Array.map (fun v -> Smc.encrypt_value ctx v) row) db
  in
  { ctx; rng; enc_points; n; d }

let db_size t = t.n
let dimension t = t.d
let bit_length t = Smc.bit_length t.ctx

type result = {
  neighbours : int array array;
  k : int;
  seconds : float;
  counters_c1 : Util.Counters.t;
  counters_c2 : Util.Counters.t;
  transcript : Transcript.t;
  interactions : int;
}

let query t ~query ~k =
  if Array.length query <> t.d then invalid_arg "Sknn_m.query: dimension mismatch";
  if k < 1 || k > t.n then invalid_arg "Sknn_m.query: k out of range";
  let ctx = t.ctx in
  let pk = Smc.pk ctx in
  let nmod = Paillier.modulus pk in
  Smc.reset_stats ctx;
  let tr = Smc.transcript ctx in
  let base_rounds = Transcript.rounds tr Transcript.Party_a Transcript.Party_b in
  let t0 = Util.Timer.now () in
  let c1 = Smc.counters_c1 ctx and c2 = Smc.counters_c2 ctx in
  (* Client sends E(q); C1 computes every encrypted squared distance. *)
  let eq = Array.map (fun v -> Smc.encrypt_value ctx v) query in
  let dists = Array.map (fun p -> Smc.ssed ctx p eq) t.enc_points in
  (* Bit-decompose every distance (batched: l interaction rounds). *)
  let bits = ref (Smc.sbd ctx dists) in
  let dists = Array.copy dists in
  let l = Smc.bit_length ctx in
  let maxval = Z.pred (Z.shift_left Z.one l) in
  (* A "trivial" encryption of the max value for the distance updates. *)
  let emax = Smc.encrypt_value ctx 0 |> fun e0 -> Paillier.add_plain ~counters:c1 pk e0 maxval in
  let results = ref [] in
  for j = 1 to k do
    (* Encrypted global minimum of the surviving distances. *)
    let min_bits = Smc.smin_n ctx !bits in
    let emin = Smc.bits_to_value ctx min_bits in
    (* C1 masks and permutes the differences d_i - dmin. *)
    let perm = Util.Perm.random t.rng t.n in
    let masked =
      Array.map
        (fun di ->
          let diff = Paillier.sub ~counters:c1 pk di emin in
          let r = Z.add Z.two (Z.random_below t.rng (Z.sub nmod Z.two)) in
          Paillier.mul_plain ~counters:c1 pk diff r)
        dists
    in
    let shuffled = Util.Perm.apply perm masked in
    Transcript.send tr ~sender:Transcript.Party_a ~receiver:Transcript.Party_b
      ~label:(Printf.sprintf "iteration %d: masked differences" j)
      ~bytes:(t.n * Paillier.byte_size pk);
    (* C2: decrypts, marks the first zero with an encrypted 1. *)
    let zeros = Array.map (fun c -> Z.is_zero (Smc.decrypt_zint_c2 ctx c)) shuffled in
    let sel =
      let rec first i =
        if i >= t.n then invalid_arg "Sknn_m.query: no minimum found (internal)"
        else if zeros.(i) then i
        else first (i + 1)
      in
      first 0
    in
    let indicator_shuffled =
      Array.init t.n (fun i -> Smc.encrypt_value_c2 ctx (if i = sel then 1 else 0))
    in
    Transcript.send tr ~sender:Transcript.Party_b ~receiver:Transcript.Party_a
      ~label:(Printf.sprintf "iteration %d: indicator vector" j)
      ~bytes:(t.n * Paillier.byte_size pk);
    (* C1: undo the permutation (shuffled.(perm i) = masked.(i)). *)
    let u = Array.init t.n (fun i -> indicator_shuffled.(Util.Perm.apply_index perm i)) in
    (* Oblivious extraction of the selected point, coordinate by
       coordinate: E(p*_c) = sum_i SM(U_i, E(p_i_c)). *)
    let point =
      Array.init t.d (fun c ->
          let acc = ref None in
          for i = 0 to t.n - 1 do
            let term = Smc.sm ctx u.(i) t.enc_points.(i).(c) in
            acc := Some (match !acc with None -> term | Some a -> Paillier.add ~counters:c1 pk a term)
          done;
          Option.get !acc)
    in
    results := point :: !results;
    if j < k then begin
      (* Push the found distance to MAX so it never wins again, then
         refresh the bit decompositions. *)
      for i = 0 to t.n - 1 do
        let delta = Smc.sm ctx u.(i) (Paillier.sub ~counters:c1 pk emax dists.(i)) in
        dists.(i) <- Paillier.add ~counters:c1 pk dists.(i) delta
      done;
      bits := Smc.sbd ctx dists
    end
  done;
  (* The client decrypts the k encrypted points. *)
  let neighbours =
    List.rev_map (fun point -> Array.map (fun c -> Smc.decrypt_value ctx c) point) !results
    |> Array.of_list
  in
  let seconds = Util.Timer.now () -. t0 in
  { neighbours;
    k;
    seconds;
    counters_c1 = c1;
    counters_c2 = c2;
    transcript = tr;
    interactions = Transcript.rounds tr Transcript.Party_a Transcript.Party_b - base_rounds }

let exact t ~db ~query:q r =
  ignore t;
  let expected = Plain_knn.kth_smallest_distances ~k:r.k ~query:q db in
  let got = Array.map (fun p -> Distance.squared_euclidean q p) r.neighbours in
  Array.sort compare got;
  expected = got
