(** The secure two-party computation toolbox of Yousef/Elmehdwi et al.
    (ICDE 2014), rebuilt over Paillier — the baseline the paper compares
    against in Table 1 and §5.2.

    Party C1 holds the encrypted data and the public key; Party C2 holds
    the secret key.  Every sub-protocol exchanges masked values so that
    C2's decryptions reveal only uniformly random-looking data:

    - [sm]: secure multiplication E(a), E(b) → E(ab) (one C1→C2→C1
      interaction with additive masks);
    - [ssed]: secure squared Euclidean distance (d multiplications);
    - [sbd]: secure bit decomposition E(x) → E(x_0)…E(x_{l-1}), one
      interaction per bit, batched across an array of inputs;
    - [smin]: secure minimum of two bit-decomposed values via the
      masked most-significant-differing-bit technique (C2 sees, for a
      random coin and random masks, a single 0/1 at an unknown
      position);
    - [smin_n]: tournament of [smin] over n values.

    All values must stay below [2^l] with [2^{l+2} < n] so the additive
    masks never wrap the Paillier modulus. *)

type ctx
(** Shared state of the two simulated parties: keys, RNG, per-party
    counters, and the communication transcript (C1 = [Party_a],
    C2 = [Party_b]). *)

val create :
  ?rng:Util.Rng.t -> sk:Paillier.secret_key -> pk:Paillier.public_key -> l:int ->
  unit -> ctx
(** @raise Invalid_argument unless [2^(l+2)] fits under the modulus. *)

val pk : ctx -> Paillier.public_key
val bit_length : ctx -> int
val counters_c1 : ctx -> Util.Counters.t
val counters_c2 : ctx -> Util.Counters.t
val transcript : ctx -> Transcript.t
val reset_stats : ctx -> unit

val encrypt_value : ctx -> int -> Paillier.ct
(** Fresh encryption by C1 (convenience for tests and setup). *)

val encrypt_value_c2 : ctx -> int -> Paillier.ct
(** Fresh encryption charged to C2 (indicator vectors etc.). *)

val decrypt_value : ctx -> Paillier.ct -> int
(** C2-side decryption (protocol steps where C2 legitimately decrypts,
    and the test oracle). *)

val decrypt_zint_c2 : ctx -> Paillier.ct -> Zint.t
(** C2-side decryption without the native-int range restriction. *)

val sm : ctx -> Paillier.ct -> Paillier.ct -> Paillier.ct
(** [sm ctx E(a) E(b) = E(a·b mod n)]. *)

val ssed : ctx -> Paillier.ct array -> Paillier.ct array -> Paillier.ct
(** Squared Euclidean distance of two encrypted coordinate vectors. *)

val sbd : ctx -> Paillier.ct array -> Paillier.ct array array
(** [sbd ctx xs] returns, for each encrypted value, its [l] encrypted
    bits (least significant first).  Values must be in [\[0, 2^l)];
    interaction is batched so the whole array costs [l] rounds. *)

val bits_to_value : ctx -> Paillier.ct array -> Paillier.ct
(** Local recombination [Σ 2^i · E(x_i)]. *)

val smin : ctx -> Paillier.ct array -> Paillier.ct array -> Paillier.ct array
(** Minimum of two bit-decomposed values, as encrypted bits. *)

val smin_n : ctx -> Paillier.ct array array -> Paillier.ct array
(** Tournament minimum of n bit-decomposed values. *)
