lib/baseline/aspe.mli: Util
