lib/baseline/smc.ml: Array Option Paillier Printf Transcript Util Zint
