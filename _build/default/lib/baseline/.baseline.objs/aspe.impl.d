lib/baseline/aspe.ml: Array Float Printf Util
