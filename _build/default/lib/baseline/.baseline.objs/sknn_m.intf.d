lib/baseline/sknn_m.mli: Transcript Util
