lib/baseline/sknn_m.ml: Array Distance List Option Paillier Plain_knn Printf Smc Stdlib Transcript Util Zint
