lib/baseline/smc.mli: Paillier Transcript Util Zint
