(** The Yousef/Elmehdwi et al. SkNN_m protocol — the state-of-the-art
    comparator of Table 1 and the §5.2 head-to-head timing.

    Structure (faithful to ICDE 2014): C1 stores the Paillier-encrypted
    database; the client sends an encrypted query; C1 and C2 jointly
    compute all squared distances (SSED), bit-decompose them (SBD), and
    then iterate k times: find the encrypted global minimum (SMIN_n),
    let C2 locate it behind a fresh permutation and multiplicative
    masks, obliviously extract the corresponding encrypted point, and
    push that distance to the maximum before the next round.  Each of
    the k iterations requires fresh interaction — the O(k) rounds our
    protocol eliminates. *)

type deployment

val deploy :
  ?rng:Util.Rng.t -> ?modulus_bits:int -> ?l:int -> db:int array array -> unit ->
  deployment
(** Key generation and database encryption.  [l] is the value bit-length
    (default: enough for the largest possible squared distance of the
    given data); [modulus_bits] defaults to 512.
    @raise Invalid_argument if any coordinate is negative or distances
    cannot fit in [l] bits under the modulus. *)

val db_size : deployment -> int
val dimension : deployment -> int
val bit_length : deployment -> int

type result = {
  neighbours : int array array;
  k : int;
  seconds : float;
  counters_c1 : Util.Counters.t;
  counters_c2 : Util.Counters.t;
  transcript : Transcript.t;
  interactions : int; (** distinct C1↔C2 interaction phases, grows with k *)
}

val query : deployment -> query:int array -> k:int -> result
(** Runs a full SkNN_m query.  Counters and transcript report this query
    only. *)

val exact : deployment -> db:int array array -> query:int array -> result -> bool
(** Ground-truth check (distance-multiset equality, as for the main
    protocol). *)
