(* Sign-magnitude bignums, little-endian limbs in base 2^31.

   Base 2^31 is chosen so that on 64-bit OCaml every limb product
   (< 2^62) plus a limb-sized carry still fits in the native 63-bit int,
   which keeps the schoolbook inner loops allocation-free and simple.

   Invariants: [mag] has no leading (most-significant) zero limb;
   [sign = 0] iff [mag = [||]]; otherwise [sign] is 1 or -1. *)

let limb_bits = 31
let base = 1 lsl limb_bits (* 2^31 *)
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ------------------------------------------------------------------ *)
(* Magnitude helpers (unsigned little-endian limb arrays).             *)
(* ------------------------------------------------------------------ *)

let mag_normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let x = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- x land mask;
    carry := x lsr limb_bits
  done;
  r.(lr - 1) <- !carry;
  mag_normalize r

(* Requires a >= b. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let x = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if x < 0 then begin
      r.(i) <- x + base;
      borrow := 1
    end
    else begin
      r.(i) <- x;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  mag_normalize r

let mag_mul_schoolbook a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          (* ai*b.(j) < 2^62; + r + carry stays < 2^63. *)
          let x = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- x land mask;
          carry := x lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let x = r.(!k) + !carry in
          r.(!k) <- x land mask;
          carry := x lsr limb_bits;
          incr k
        done
      end
    done;
    mag_normalize r
  end

let karatsuba_threshold = 32

let mag_low a n = mag_normalize (Array.sub a 0 (Stdlib.min n (Array.length a)))

let mag_high a n =
  let la = Array.length a in
  if la <= n then [||] else Array.sub a n (la - n)

let mag_shift_limbs a k =
  let la = Array.length a in
  if la = 0 then [||]
  else begin
    let r = Array.make (la + k) 0 in
    Array.blit a 0 r k la;
    r
  end

let rec mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then mag_mul_schoolbook a b
  else begin
    (* Karatsuba: a = a1*B^h + a0, b = b1*B^h + b0. *)
    let h = (Stdlib.max la lb + 1) / 2 in
    let a0 = mag_low a h and a1 = mag_high a h in
    let b0 = mag_low b h and b1 = mag_high b h in
    let z0 = mag_mul a0 b0 in
    let z2 = mag_mul a1 b1 in
    let z1 =
      (* (a0+a1)(b0+b1) - z0 - z2 *)
      let s = mag_mul (mag_add a0 a1) (mag_add b0 b1) in
      mag_sub (mag_sub s z0) z2
    in
    mag_add (mag_add z0 (mag_shift_limbs z1 h)) (mag_shift_limbs z2 (2 * h))
  end

(* Shift magnitude left by s bits, 0 <= s. *)
let mag_shift_left a s =
  if Array.length a = 0 || s = 0 then Array.copy a
  else begin
    let limb_shift = s / limb_bits and bit_shift = s mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    if bit_shift = 0 then Array.blit a 0 r limb_shift la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let x = (a.(i) lsl bit_shift) lor !carry in
        r.(i + limb_shift) <- x land mask;
        carry := x lsr limb_bits
      done;
      r.(la + limb_shift) <- !carry
    end;
    mag_normalize r
  end

let mag_shift_right a s =
  if Array.length a = 0 || s = 0 then Array.copy a
  else begin
    let limb_shift = s / limb_bits and bit_shift = s mod limb_bits in
    let la = Array.length a in
    if limb_shift >= la then [||]
    else begin
      let lr = la - limb_shift in
      let r = Array.make lr 0 in
      if bit_shift = 0 then Array.blit a limb_shift r 0 lr
      else begin
        for i = 0 to lr - 1 do
          let lo = a.(i + limb_shift) lsr bit_shift in
          let hi =
            if i + limb_shift + 1 < la then
              (a.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land mask
            else 0
          in
          r.(i) <- lo lor hi
        done
      end;
      mag_normalize r
    end
  end

(* Divide magnitude by a single limb; returns (quotient, remainder limb). *)
let mag_divmod_limb a v =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let x = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- x / v;
    r := x mod v
  done;
  (mag_normalize q, !r)

let bits_in_limb x =
  (* Number of significant bits in a limb (0 < x < 2^31). *)
  let rec go n x = if x = 0 then n else go (n + 1) (x lsr 1) in
  go 0 x

(* Knuth Algorithm D. Requires |u| >= |v|, Array.length v >= 2. *)
let mag_divmod_knuth u v =
  let n = Array.length v in
  let m = Array.length u - n in
  let s = limb_bits - bits_in_limb v.(n - 1) in
  let vn = mag_shift_left v s in
  let vn = if Array.length vn < n then Array.append vn (Array.make (n - Array.length vn) 0) else vn in
  (* un gets an extra high limb. *)
  let un_shifted = mag_shift_left u s in
  let un = Array.make (Array.length u + 1) 0 in
  Array.blit un_shifted 0 un 0 (Array.length un_shifted);
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    let num = (un.(j + n) lsl limb_bits) lor un.(j + n - 1) in
    let qhat = ref (num / vn.(n - 1)) in
    let rhat = ref (num mod vn.(n - 1)) in
    let adjust = ref true in
    while !adjust do
      if !qhat >= base
         || (n >= 2 && !qhat * vn.(n - 2) > (!rhat lsl limb_bits) lor un.(j + n - 2))
      then begin
        decr qhat;
        rhat := !rhat + vn.(n - 1);
        if !rhat >= base then adjust := false
      end
      else adjust := false
    done;
    (* Multiply and subtract: un[j..j+n] -= qhat * vn. *)
    let borrow = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * vn.(i)) + !borrow in
      let sub = un.(i + j) - (p land mask) in
      if sub < 0 then begin
        un.(i + j) <- sub + base;
        borrow := (p lsr limb_bits) + 1
      end
      else begin
        un.(i + j) <- sub;
        borrow := p lsr limb_bits
      end
    done;
    let sub = un.(j + n) - !borrow in
    if sub < 0 then begin
      (* qhat was one too large: add back. *)
      un.(j + n) <- (sub + base) land mask;
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let x = un.(i + j) + vn.(i) + !carry in
        un.(i + j) <- x land mask;
        carry := x lsr limb_bits
      done;
      un.(j + n) <- (un.(j + n) + !carry) land mask
    end
    else un.(j + n) <- sub;
    q.(j) <- !qhat
  done;
  let r = mag_shift_right (mag_normalize (Array.sub un 0 n)) s in
  (mag_normalize q, r)

let mag_divmod u v =
  match Array.length v with
  | 0 -> raise Division_by_zero
  | _ when mag_compare u v < 0 -> ([||], Array.copy u)
  | 1 ->
    let q, r = mag_divmod_limb u v.(0) in
    (q, if r = 0 then [||] else [| r |])
  | _ -> mag_divmod_knuth u v

(* ------------------------------------------------------------------ *)
(* Signed layer.                                                       *)
(* ------------------------------------------------------------------ *)

let make sign mag =
  let mag = mag_normalize mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* min_int has no positive counterpart; go through its limbs directly. *)
    let rec limbs acc n = if n = 0 then acc else limbs ((n land mask) :: acc) (n lsr limb_bits) in
    let v = if n = min_int then ((-(n / base)) * base) else abs n in
    ignore v;
    let mag =
      if n = min_int then
        (* |min_int| = 2^62: limbs = [0; 0; 1] in base 2^31 gives 2^62. *)
        [| 0; 0; 1 |]
      else Array.of_list (List.rev (List.rev (limbs [] (abs n))))
    in
    make sign mag
  end

let of_int64 n =
  if Int64.compare n 0L = 0 then zero
  else begin
    let sign = if Int64.compare n 0L > 0 then 1 else -1 in
    let mag_of_u64 u =
      (* u treated as unsigned 64-bit. *)
      let l0 = Int64.to_int (Int64.logand u 0x7FFFFFFFL) in
      let l1 = Int64.to_int (Int64.logand (Int64.shift_right_logical u 31) 0x7FFFFFFFL) in
      let l2 = Int64.to_int (Int64.shift_right_logical u 62) in
      [| l0; l1; l2 |]
    in
    let u = if sign > 0 then n else Int64.neg n in
    (* Int64.neg min_int = min_int, whose logical bits are exactly 2^63. *)
    make sign (mag_of_u64 u)
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign t = t.sign
let is_zero t = t.sign = 0
let is_even t = t.sign = 0 || t.mag.(0) land 1 = 0
let is_odd t = not (is_even t)

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then mag_compare a.mag b.mag
  else mag_compare b.mag a.mag

let equal a b = compare a b = 0
let is_one t = equal t one
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg t = if t.sign = 0 then zero else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (mag_add a.mag b.mag)
  else begin
    let c = mag_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (mag_sub a.mag b.mag)
    else make b.sign (mag_sub b.mag a.mag)
  end

let sub a b = add a (neg b)
let succ a = add a one
let pred a = sub a one

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mag_mul a.mag b.mag)

let mul_int a n = mul a (of_int n)
let sqr a = mul a a

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let qm, rm = mag_divmod a.mag b.mag in
    let q = make (a.sign * b.sign) qm in
    let r = make a.sign rm in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv_rem a b =
  let q, r = divmod a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (pred q, add r b)
  else (succ q, sub r b)

let erem a b = snd (ediv_rem a b)

let pow x n =
  if n < 0 then invalid_arg "Zint.pow: negative exponent";
  let rec go acc base n =
    if n = 0 then acc
    else go (if n land 1 = 1 then mul acc base else acc) (sqr base) (n lsr 1)
  in
  go one x n

let shift_left t s =
  if s < 0 then invalid_arg "Zint.shift_left";
  if t.sign = 0 then zero else make t.sign (mag_shift_left t.mag s)

let shift_right t s =
  if s < 0 then invalid_arg "Zint.shift_right";
  if t.sign = 0 then zero else make t.sign (mag_shift_right t.mag s)

let numbits t =
  let l = Array.length t.mag in
  if l = 0 then 0 else ((l - 1) * limb_bits) + bits_in_limb t.mag.(l - 1)

let testbit t i =
  if i < 0 then invalid_arg "Zint.testbit";
  let limb = i / limb_bits and bit = i mod limb_bits in
  limb < Array.length t.mag && (t.mag.(limb) lsr bit) land 1 = 1

let to_int_opt t =
  if t.sign = 0 then Some 0
  else if numbits t <= 62 then begin
    let v = ref 0 in
    for i = Array.length t.mag - 1 downto 0 do
      v := (!v lsl limb_bits) lor t.mag.(i)
    done;
    Some (t.sign * !v)
  end
  else None

let to_int_exn t =
  match to_int_opt t with
  | Some n -> n
  | None -> failwith "Zint.to_int_exn: value out of native int range"

let to_int64_opt t =
  if t.sign = 0 then Some 0L
  else if numbits t <= 62 then Some (Int64.of_int (to_int_exn t))
  else if numbits t = 63 then begin
    let v = ref 0L in
    for i = Array.length t.mag - 1 downto 0 do
      v := Int64.logor (Int64.shift_left !v limb_bits) (Int64.of_int t.mag.(i))
    done;
    if t.sign > 0 then (if Int64.compare !v 0L >= 0 then Some !v else None)
    else Some (Int64.neg !v)
  end
  else if numbits t = 64 && t.sign < 0 then begin
    (* Only -2^63 representable. *)
    let m = t.mag in
    if Array.length m = 3 && m.(0) = 0 && m.(1) = 0 && m.(2) = 4 then Some Int64.min_int
    else None
  end
  else None

let to_float t =
  let f = ref 0.0 in
  for i = Array.length t.mag - 1 downto 0 do
    f := (!f *. 2147483648.0) +. float_of_int t.mag.(i)
  done;
  float_of_int t.sign *. !f

(* ------------------------------------------------------------------ *)
(* Radix-10 I/O via 10^9-sized chunks.                                 *)
(* ------------------------------------------------------------------ *)

let chunk = 1_000_000_000

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go mag acc =
      if Array.length mag = 0 then acc
      else begin
        let q, r = mag_divmod_limb mag chunk in
        go q (r :: acc)
      end
    in
    (match go t.mag [] with
     | [] -> assert false
     | first :: rest ->
       if t.sign < 0 then Buffer.add_char buf '-';
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Zint.of_string: empty";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start >= len then invalid_arg "Zint.of_string: no digits";
  let acc = ref zero in
  let i = ref start in
  while !i < len do
    let stop = Stdlib.min len (!i + 9) in
    let piece = String.sub s !i (stop - !i) in
    String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Zint.of_string: bad digit") piece;
    let width = stop - !i in
    let scale = int_of_float (10.0 ** float_of_int width) in
    acc := add (mul_int !acc scale) (of_int (int_of_string piece));
    i := stop
  done;
  if negative then neg !acc else !acc

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* ------------------------------------------------------------------ *)
(* Number theory.                                                      *)
(* ------------------------------------------------------------------ *)

let gcd a b =
  let rec go a b = if is_zero b then a else go b (erem a b) in
  go (abs a) (abs b)

let egcd a b =
  (* Iterative extended Euclid on (a, b); returns (g, u, v), u*a+v*b=g. *)
  let rec go r0 r1 s0 s1 t0 t1 =
    if is_zero r1 then (r0, s0, t0)
    else begin
      let q = div r0 r1 in
      go r1 (sub r0 (mul q r1)) s1 (sub s0 (mul q s1)) t1 (sub t0 (mul q t1))
    end
  in
  let g, u, v = go a b one zero zero one in
  if sign g < 0 then (neg g, neg u, neg v) else (g, u, v)

let modinv a m =
  let g, u, _ = egcd a m in
  if not (is_one g) then failwith "Zint.modinv: not invertible";
  erem u m

let powmod_generic b e m =
  let b = erem b m in
  let result = ref one and base = ref b in
  let nb = numbits e in
  for i = 0 to nb - 1 do
    if testbit e i then result := erem (mul !result !base) m;
    if i < nb - 1 then base := erem (sqr !base) m
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Montgomery exponentiation (odd moduli).                             *)
(*                                                                     *)
(* Each Montgomery step replaces a full Knuth division by a fused CIOS *)
(* multiply-reduce, which is what makes Paillier usable from a pure-   *)
(* OCaml bignum layer.  R = 2^(31k) for a k-limb modulus.              *)
(* ------------------------------------------------------------------ *)

(* Inverse of an odd limb mod 2^31 by Newton iteration (x = m0 is
   already an inverse mod 8; each step doubles the valid bits). *)
let inv_limb_mod_base m0 =
  let x = ref m0 in
  for _ = 1 to 5 do
    x := !x * (2 - (m0 * !x)) land mask
  done;
  !x land mask

let mont_mul k mmag m0' a b =
  let t = Array.make (k + 2) 0 in
  let la = Array.length a and lb = Array.length b in
  for i = 0 to k - 1 do
    let ai = if i < la then a.(i) else 0 in
    (* t += ai * b *)
    let c = ref 0 in
    for j = 0 to k - 1 do
      let bj = if j < lb then b.(j) else 0 in
      let x = t.(j) + (ai * bj) + !c in
      t.(j) <- x land mask;
      c := x lsr limb_bits
    done;
    let x = t.(k) + !c in
    t.(k) <- x land mask;
    t.(k + 1) <- t.(k + 1) + (x lsr limb_bits);
    (* t += u * m with u chosen to zero the low limb, then shift. *)
    let u = t.(0) * m0' land mask in
    let x = t.(0) + (u * mmag.(0)) in
    let c = ref (x lsr limb_bits) in
    for j = 1 to k - 1 do
      let x = t.(j) + (u * mmag.(j)) + !c in
      t.(j - 1) <- x land mask;
      c := x lsr limb_bits
    done;
    let x = t.(k) + !c in
    t.(k - 1) <- x land mask;
    let x = t.(k + 1) + (x lsr limb_bits) in
    t.(k) <- x land mask;
    t.(k + 1) <- x lsr limb_bits
  done;
  (* t < 2m: one conditional subtraction. *)
  let r = Array.sub t 0 (k + 1) in
  let rn = mag_normalize r in
  if mag_compare rn mmag >= 0 then mag_sub rn mmag else rn

let powmod_mont b e m =
  let mmag = m.mag in
  let k = Array.length mmag in
  let m0' = (base - inv_limb_mod_base mmag.(0)) land mask in
  let to_mont x =
    (* x * R mod m *)
    snd (mag_divmod (mag_shift_limbs x k) mmag)
  in
  let one_mont = to_mont [| 1 |] in
  let base_mont = ref (to_mont (erem b m).mag) in
  let result = ref one_mont in
  let nb = numbits e in
  for i = 0 to nb - 1 do
    if testbit e i then result := mont_mul k mmag m0' !result !base_mont;
    if i < nb - 1 then base_mont := mont_mul k mmag m0' !base_mont !base_mont
  done;
  make 1 (mont_mul k mmag m0' !result [| 1 |])

let powmod b e m =
  if sign e < 0 then invalid_arg "Zint.powmod: negative exponent";
  if sign m <= 0 then invalid_arg "Zint.powmod: modulus <= 0";
  if is_one m then zero
  else if is_odd m && Array.length m.mag >= 2 then powmod_mont b e m
  else powmod_generic b e m

let lcm a b =
  if is_zero a || is_zero b then zero
  else abs (div (mul a b) (gcd a b))

(* ------------------------------------------------------------------ *)
(* Randomness and primality.                                           *)
(* ------------------------------------------------------------------ *)

let random_bits rng bits =
  if bits < 0 then invalid_arg "Zint.random_bits";
  if bits = 0 then zero
  else begin
    let nlimbs = (bits + limb_bits - 1) / limb_bits in
    let mag = Array.init nlimbs (fun _ -> Int64.to_int (Util.Rng.int64_below rng (Int64.of_int base))) in
    let top_bits = bits - ((nlimbs - 1) * limb_bits) in
    mag.(nlimbs - 1) <- mag.(nlimbs - 1) land ((1 lsl top_bits) - 1);
    make 1 mag
  end

let random_below rng bound =
  if sign bound <= 0 then invalid_arg "Zint.random_below: bound <= 0";
  let bits = numbits bound in
  let rec loop () =
    let candidate = random_bits rng bits in
    if compare candidate bound < 0 then candidate else loop ()
  in
  loop ()

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67;
    71; 73; 79; 83; 89; 97; 101; 103; 107; 109; 113; 127; 131; 137; 139; 149;
    151; 157; 163; 167; 173; 179; 181; 191; 193; 197; 199; 211; 223; 227; 229 ]

let is_probable_prime ?(rounds = 24) rng n =
  let n = abs n in
  if compare n two < 0 then false
  else if List.exists (fun p -> equal n (of_int p)) small_primes then true
  else if List.exists (fun p -> is_zero (erem n (of_int p))) small_primes then false
  else begin
    (* n - 1 = 2^r * d with d odd. *)
    let n1 = pred n in
    let rec split r d = if is_even d then split (r + 1) (shift_right d 1) else (r, d) in
    let r, d = split 0 n1 in
    let witness a =
      let x = ref (powmod a d n) in
      if is_one !x || equal !x n1 then true
      else begin
        let ok = ref false in
        let i = ref 1 in
        while (not !ok) && !i < r do
          x := erem (sqr !x) n;
          if equal !x n1 then ok := true;
          incr i
        done;
        !ok
      end
    in
    let rec trial k =
      if k = 0 then true
      else begin
        let a = add two (random_below rng (sub n (of_int 4))) in
        if witness a then trial (k - 1) else false
      end
    in
    trial rounds
  end

let random_prime rng ~bits =
  if bits < 2 then invalid_arg "Zint.random_prime: bits < 2";
  let rec loop () =
    let candidate = random_bits rng bits in
    (* Force top bit (exact width) and bottom bit (odd). *)
    let candidate = add candidate (shift_left one (bits - 1)) in
    let candidate = if is_even candidate then succ candidate else candidate in
    let candidate =
      if numbits candidate > bits then sub candidate two else candidate
    in
    if numbits candidate = bits && is_probable_prime rng candidate then candidate
    else loop ()
  in
  if bits = 2 then (if Util.Rng.bool rng then of_int 2 else of_int 3)
  else loop ()

let next_prime rng n =
  let start = if compare n two < 0 then two else succ n in
  let start = if is_even start && not (equal start two) then succ start else start in
  let rec go c = if is_probable_prime rng c then c else go (add c two) in
  if equal start two then two else go start
