(** Arbitrary-precision signed integers.

    The sealed build environment has no [zarith], yet the Paillier baseline
    needs 512–2048-bit modular arithmetic and BGV decryption needs exact
    CRT lifting across the RNS modulus chain.  This module implements the
    required bignum substrate from scratch: sign-magnitude representation
    with base-2^31 limbs (so every intermediate limb product fits in
    OCaml's 63-bit native [int]), schoolbook and Karatsuba multiplication,
    Knuth Algorithm-D division, extended GCD, modular exponentiation and
    Miller–Rabin primality testing.

    All functions are pure; values are immutable. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t
val of_int64 : int64 -> t

val to_int_opt : t -> int option
(** [Some n] iff the value fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val to_int64_opt : t -> int64 option
val to_float : t -> float

val of_string : string -> t
(** Decimal, with optional leading ['-']. @raise Invalid_argument on
    malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Predicates and comparison} *)

val sign : t -> int
(** -1, 0 or 1. *)

val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool
val is_odd : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val succ : t -> t
val pred : t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val sqr : t -> t

val divmod : t -> t -> t * t
(** Truncated division: [divmod a b = (q, r)] with [a = q*b + r],
    [|r| < |b|] and [sign r ∈ {0, sign a}]. @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv_rem : t -> t -> t * t
(** Euclidean division: remainder always in [\[0, |b|)]. *)

val erem : t -> t -> t
(** Euclidean remainder, always non-negative. *)

val pow : t -> int -> t
(** [pow x n] for [n >= 0]. *)

(** {1 Bit-level operations} *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift toward zero on the magnitude (sign preserved). *)

val numbits : t -> int
(** Bits in the magnitude: [numbits 0 = 0], [numbits 1 = 1],
    [numbits 255 = 8]. *)

val testbit : t -> int -> bool
(** Bit [i] of the magnitude. *)

(** {1 Number theory} *)

val gcd : t -> t -> t
(** Always non-negative. *)

val egcd : t -> t -> t * t * t
(** [egcd a b = (g, u, v)] with [g = gcd a b >= 0] and [u*a + v*b = g]. *)

val modinv : t -> t -> t
(** [modinv a m] is the inverse of [a] modulo [m], in [\[0, m)].
    @raise Failure if [gcd a m <> 1]. *)

val powmod : t -> t -> t -> t
(** [powmod base exp m] for [exp >= 0], [m > 0]; result in [\[0, m)]. *)

val lcm : t -> t -> t

(** {1 Randomness and primality} *)

val random_bits : Util.Rng.t -> int -> t
(** Uniform in [\[0, 2^bits)]. *)

val random_below : Util.Rng.t -> t -> t
(** Uniform in [\[0, bound)] by rejection sampling; [bound > 0]. *)

val is_probable_prime : ?rounds:int -> Util.Rng.t -> t -> bool
(** Miller–Rabin with [rounds] random bases (default 24) after trial
    division by small primes. *)

val random_prime : Util.Rng.t -> bits:int -> t
(** A random probable prime with exactly [bits] bits ([bits >= 2]). *)

val next_prime : Util.Rng.t -> t -> t
(** Smallest probable prime strictly greater than the argument. *)
