(** Plaintext Lloyd's k-means over integer points — the reference for
    the secure k-means extension (the paper's §7 names k-means as the
    next algorithm to port to this setting).

    All arithmetic is integral: centroids are rounded coordinate means,
    so a secure protocol computing the same rounding reproduces the
    exact same iterates. *)

type result = {
  centroids : int array array;   (** k final centroids *)
  assignments : int array;       (** cluster index per input point *)
  sizes : int array;             (** points per cluster *)
  iterations : int;              (** iterations actually executed *)
  converged : bool;              (** stopped because centroids were stable *)
  objective : int;               (** sum of squared distances to assigned centroid *)
}

val assign : centroids:int array array -> int array array -> int array
(** Nearest-centroid assignment (squared Euclidean; ties to the lowest
    centroid index). *)

val update : k:int -> d:int -> assignments:int array -> int array array -> int array option array
(** Rounded integer means per cluster; [None] for empty clusters. *)

val objective : centroids:int array array -> assignments:int array -> int array array -> int

val lloyd :
  ?max_iters:int -> init:int array array -> int array array -> result
(** Runs Lloyd's algorithm from the given initial centroids
    (default [max_iters] 50).  Empty clusters keep their previous
    centroid. @raise Invalid_argument on empty input or k = 0. *)
