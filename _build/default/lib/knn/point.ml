type t = int array

let dim = Array.length

let validate ?(max_value = 1 lsl 30) p =
  Array.iter
    (fun x ->
      if x < 0 || x > max_value then
        invalid_arg (Printf.sprintf "Point.validate: coordinate %d out of [0, %d]" x max_value))
    p

let equal (a : t) (b : t) = a = b

let pp ppf p =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (Array.to_list p)
