(** Database points: fixed-dimension vectors of non-negative integers.

    The paper preprocesses both UCI datasets "so that they contain only
    non-negative integer values"; every layer of this repository works on
    that representation. *)

type t = int array

val dim : t -> int

val validate : ?max_value:int -> t -> unit
(** Checks all coordinates are in [\[0, max_value\]] (default 2^30).
    @raise Invalid_argument otherwise. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
