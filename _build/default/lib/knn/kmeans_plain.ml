type result = {
  centroids : int array array;
  assignments : int array;
  sizes : int array;
  iterations : int;
  converged : bool;
  objective : int;
}

let assign ~centroids db =
  Array.map
    (fun p ->
      let best = ref 0 in
      let best_d = ref (Distance.squared_euclidean p centroids.(0)) in
      Array.iteri
        (fun c cent ->
          if c > 0 then begin
            let d = Distance.squared_euclidean p cent in
            if d < !best_d then begin
              best := c;
              best_d := d
            end
          end)
        centroids;
      !best)
    db

let update ~k ~d ~assignments db =
  let sums = Array.make_matrix k d 0 in
  let counts = Array.make k 0 in
  Array.iteri
    (fun i p ->
      let c = assignments.(i) in
      counts.(c) <- counts.(c) + 1;
      Array.iteri (fun j v -> sums.(c).(j) <- sums.(c).(j) + v) p)
    db;
  Array.init k (fun c ->
      if counts.(c) = 0 then None
      else
        Some
          (Array.map
             (fun s ->
               (* round-half-up integer mean *)
               (s + (counts.(c) / 2)) / counts.(c))
             sums.(c)))

let objective ~centroids ~assignments db =
  let acc = ref 0 in
  Array.iteri
    (fun i p -> acc := !acc + Distance.squared_euclidean p centroids.(assignments.(i)))
    db;
  !acc

let lloyd ?(max_iters = 50) ~init db =
  let n = Array.length db in
  if n = 0 then invalid_arg "Kmeans_plain.lloyd: empty input";
  let k = Array.length init in
  if k = 0 then invalid_arg "Kmeans_plain.lloyd: k = 0";
  let d = Array.length db.(0) in
  let centroids = ref (Array.map Array.copy init) in
  let iterations = ref 0 in
  let converged = ref false in
  let assignments = ref (assign ~centroids:!centroids db) in
  while (not !converged) && !iterations < max_iters do
    incr iterations;
    let fresh = update ~k ~d ~assignments:!assignments db in
    let next =
      Array.mapi
        (fun c -> function Some cent -> cent | None -> Array.copy !centroids.(c))
        fresh
    in
    if next = !centroids then converged := true
    else begin
      centroids := next;
      assignments := assign ~centroids:next db
    end
  done;
  let sizes = Array.make k 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) !assignments;
  { centroids = !centroids;
    assignments = !assignments;
    sizes;
    iterations = !iterations;
    converged = !converged;
    objective = objective ~centroids:!centroids ~assignments:!assignments db }
