let validate transactions =
  Array.iter
    (fun row ->
      Array.iter
        (fun v -> if v <> 0 && v <> 1 then invalid_arg "Apriori_plain: transactions must be 0/1")
        row)
    transactions

let support itemset transactions =
  Array.fold_left
    (fun acc row -> if List.for_all (fun j -> row.(j) = 1) itemset then acc + 1 else acc)
    0 transactions

let singletons transactions =
  if Array.length transactions = 0 then []
  else List.init (Array.length transactions.(0)) (fun j -> [ j ])

(* Join step: two sorted k-itemsets sharing their first k-1 items
   produce a (k+1)-candidate; prune those with an infrequent subset. *)
let candidates frequent =
  let set = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace set s ()) frequent;
  let joinable a b =
    let rec go a b =
      match a, b with
      | [ x ], [ y ] -> if x < y then Some (x, y) else None
      | xa :: ra, xb :: rb when xa = xb -> go ra rb
      | _ -> None
    in
    go a b
  in
  let extend a b =
    match joinable a b with
    | None -> None
    | Some (_, y) -> Some (a @ [ y ])
  in
  let all_subsets_frequent c =
    let rec drop_each prefix = function
      | [] -> true
      | x :: rest ->
        Hashtbl.mem set (List.rev_append prefix rest) && drop_each (x :: prefix) rest
    in
    drop_each [] c
  in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          match extend a b with
          | Some c when all_subsets_frequent c -> Some c
          | Some _ | None -> None)
        frequent)
    frequent
  |> List.sort_uniq compare

let frequent_itemsets ?(max_size = 4) ~minsup transactions =
  if minsup < 1 then invalid_arg "Apriori_plain: minsup < 1";
  validate transactions;
  let rec level acc current size =
    if size > max_size || current = [] then List.rev acc
    else begin
      let frequent =
        List.filter_map
          (fun c ->
            let s = support c transactions in
            if s >= minsup then Some (c, s) else None)
          current
      in
      let surviving = List.map fst frequent in
      level (List.rev_append frequent acc) (candidates surviving) (size + 1)
    end
  in
  level [] (singletons transactions) 1
