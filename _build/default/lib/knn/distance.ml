let check_dims a b op =
  if Array.length a <> Array.length b then invalid_arg (op ^ ": dimension mismatch")

let squared_euclidean a b =
  check_dims a b "Distance.squared_euclidean";
  let acc = ref 0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) - b.(i) in
    acc := !acc + (d * d)
  done;
  !acc

let manhattan a b =
  check_dims a b "Distance.manhattan";
  let acc = ref 0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc + abs (a.(i) - b.(i))
  done;
  !acc

let chebyshev a b =
  check_dims a b "Distance.chebyshev";
  let acc = ref 0 in
  for i = 0 to Array.length a - 1 do
    acc := Stdlib.max !acc (abs (a.(i) - b.(i)))
  done;
  !acc

let max_squared_euclidean ~d ~max_value = d * max_value * max_value

let fits_in_bits ~value ~bits = value >= 0 && (bits >= 62 || value < 1 lsl bits)
