(** Distance measures over integer points.

    The protocol computes squared Euclidean distances homomorphically
    (avoiding the square root, as in §2.3 of the paper); this module is
    the exact plaintext counterpart used for ground truth and for
    Party-B-side reference computations.  Results are native [int]s —
    callers should check {!fits_in_bits} against the plaintext-modulus
    envelope before trusting the encrypted pipeline. *)

val squared_euclidean : int array -> int array -> int
(** @raise Invalid_argument on dimension mismatch. *)

val manhattan : int array -> int array -> int
(** L1 distance; computable under the same (S)HE at level 2 per the
    paper's remark in §3.2 (needs an encrypted absolute value, so the
    secure pipeline does not implement it — reference only). *)

val chebyshev : int array -> int array -> int

val max_squared_euclidean : d:int -> max_value:int -> int
(** Upper bound on {!squared_euclidean} for [d]-dimensional points with
    coordinates in [\[0, max_value\]]. *)

val fits_in_bits : value:int -> bits:int -> bool
