lib/knn/distance.mli:
