lib/knn/apriori_plain.ml: Array Hashtbl List
