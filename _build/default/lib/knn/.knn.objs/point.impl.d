lib/knn/point.ml: Array Format Printf
