lib/knn/apriori_plain.mli:
