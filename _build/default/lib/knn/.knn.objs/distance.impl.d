lib/knn/distance.ml: Array Stdlib
