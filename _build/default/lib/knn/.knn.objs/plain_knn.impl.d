lib/knn/plain_knn.ml: Array Distance Printf
