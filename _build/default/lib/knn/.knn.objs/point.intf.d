lib/knn/point.mli: Format
