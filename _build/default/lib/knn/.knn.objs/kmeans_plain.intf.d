lib/knn/kmeans_plain.mli:
