lib/knn/kmeans_plain.ml: Array Distance
