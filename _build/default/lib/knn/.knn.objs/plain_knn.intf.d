lib/knn/plain_knn.mli:
