(** Exact plaintext k-nearest neighbours — the ground truth every secure
    protocol in this repository is checked against.

    Ties: when several points are equidistant at the k-th boundary the
    *set* of returned distances is uniquely determined but the identity of
    the boundary point is not; secure protocols are therefore validated
    with {!same_answer} (distance-multiset equality) rather than index
    equality, matching the paper's exactness claim. *)

type metric = int array -> int array -> int

val knn :
  ?metric:metric -> k:int -> query:int array -> int array array -> int array
(** Indices of the [k] nearest database points, sorted by (distance,
    index). [k] must satisfy [1 <= k <= n]. *)

val knn_streaming :
  ?metric:metric -> k:int -> query:int array -> int array array -> int array
(** Same answer computed with Algorithm 2's streaming max-replacement
    scan (initialise with the first k, replace the current maximum on
    strict improvement) — the exact selection rule Party B runs. *)

val distances :
  ?metric:metric -> query:int array -> int array array -> int array

val kth_smallest_distances :
  ?metric:metric -> k:int -> query:int array -> int array array -> int array
(** The multiset (sorted ascending) of the [k] smallest distances. *)

val same_answer :
  ?metric:metric -> k:int -> query:int array -> int array array -> int array -> bool
(** [same_answer ~k ~query db indices] holds iff [indices] are distinct,
    in range, and their distance multiset equals the true k smallest. *)
