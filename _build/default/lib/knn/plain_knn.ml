type metric = int array -> int array -> int

let default_metric = Distance.squared_euclidean

let check_k k n =
  if k < 1 || k > n then
    invalid_arg (Printf.sprintf "Plain_knn: k=%d out of [1, %d]" k n)

let distances ?(metric = default_metric) ~query db =
  Array.map (fun p -> metric query p) db

let knn ?(metric = default_metric) ~k ~query db =
  let n = Array.length db in
  check_k k n;
  let order = Array.init n (fun i -> i) in
  let dist = distances ~metric ~query db in
  Array.sort
    (fun i j -> if dist.(i) <> dist.(j) then compare dist.(i) dist.(j) else compare i j)
    order;
  Array.sub order 0 k

let knn_streaming ?(metric = default_metric) ~k ~query db =
  let n = Array.length db in
  check_k k n;
  let dist = distances ~metric ~query db in
  (* Algorithm 2: seed with the first k points, then replace the current
     maximum whenever a strictly smaller distance appears. *)
  let nn = Array.sub dist 0 k in
  let nn_index = Array.init k (fun i -> i) in
  for i = k to n - 1 do
    let maxindex = ref 0 in
    for j = 1 to k - 1 do
      if nn.(j) > nn.(!maxindex) then maxindex := j
    done;
    if dist.(i) < nn.(!maxindex) then begin
      nn.(!maxindex) <- dist.(i);
      nn_index.(!maxindex) <- i
    end
  done;
  Array.sort
    (fun i j -> if dist.(i) <> dist.(j) then compare dist.(i) dist.(j) else compare i j)
    nn_index;
  nn_index

let kth_smallest_distances ?(metric = default_metric) ~k ~query db =
  let dist = distances ~metric ~query db in
  check_k k (Array.length dist);
  Array.sort compare dist;
  Array.sub dist 0 k

let same_answer ?(metric = default_metric) ~k ~query db indices =
  let n = Array.length db in
  Array.length indices = k
  && Array.for_all (fun i -> i >= 0 && i < n) indices
  && (let sorted = Array.copy indices in
      Array.sort compare sorted;
      let distinct = ref true in
      for i = 0 to k - 2 do
        if sorted.(i) = sorted.(i + 1) then distinct := false
      done;
      !distinct)
  &&
  let expected = kth_smallest_distances ~metric ~k ~query db in
  let got = Array.map (fun i -> metric query db.(i)) indices in
  Array.sort compare got;
  expected = got
