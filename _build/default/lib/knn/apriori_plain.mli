(** Plaintext Apriori frequent-itemset mining — reference for the secure
    extension (named, with k-means, in the paper's §7 future work).

    Transactions are 0/1 rows over [m] items; an itemset is a sorted
    list of item indices; its support is the number of transactions
    containing every item. *)

val support : int list -> int array array -> int

val candidates : int list list -> int list list
(** Levelwise candidate generation: join frequent k-itemsets sharing a
    (k-1)-prefix, prune candidates with an infrequent subset.  Input
    must be sorted lexicographically (as returned by
    {!frequent_itemsets}). *)

val singletons : int array array -> int list list

val frequent_itemsets :
  ?max_size:int -> minsup:int -> int array array -> (int list * int) list
(** All itemsets with support >= [minsup] (size capped by [max_size],
    default 4), with their supports, in (size, lexicographic) order.
    @raise Invalid_argument on non-0/1 input or [minsup < 1]. *)
