(** Randomness for RLWE: uniform ring elements, ternary secrets and
    centered-binomial noise.

    Noise is sampled from the centered binomial distribution CBD(eta)
    (sum of eta coin flips minus sum of eta coin flips), the standard
    substitute for a discrete Gaussian in lattice implementations: it has
    variance eta/2, is trivially constant-time, and its tail bound
    [|x| <= eta] makes the noise analysis in {!Bgv} exact. *)

val uniform : Util.Rng.t -> Rq.context -> nprimes:int -> Rq.t
(** A uniform element of R_Q (independent uniform residues per prime, in
    [Eval] domain — uniformity is domain-invariant). *)

val ternary_coeffs : Util.Rng.t -> n:int -> int array
(** Coefficients i.i.d. uniform on [{-1, 0, 1}]. *)

val cbd_coeffs : Util.Rng.t -> n:int -> eta:int -> int array
(** Coefficients i.i.d. CBD(eta), each in [\[-eta, eta\]]. *)

val zero_coeffs : n:int -> int array
