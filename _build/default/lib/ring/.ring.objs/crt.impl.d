lib/ring/crt.ml: Array Zint
