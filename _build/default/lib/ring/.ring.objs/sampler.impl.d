lib/ring/sampler.ml: Array Rq Util
