lib/ring/rq.mli: Crt Format Zint
