lib/ring/crt.mli: Zint
