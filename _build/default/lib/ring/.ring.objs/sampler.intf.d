lib/ring/sampler.mli: Rq Util
