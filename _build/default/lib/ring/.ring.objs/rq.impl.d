lib/ring/rq.ml: Array Crt Format Hashtbl Int64 List Mod64 Ntt Zint
