module Rng = Util.Rng

let uniform rng ctx ~nprimes =
  let n = Rq.degree ctx in
  let moduli = Rq.moduli ctx in
  let comps =
    Array.init nprimes (fun i ->
        let p = moduli.(i) in
        Array.init n (fun _ -> Rng.int_below rng p))
  in
  Rq.of_components ctx Rq.Eval comps

let ternary_coeffs rng ~n = Array.init n (fun _ -> Rng.int_below rng 3 - 1)

let cbd_coeffs rng ~n ~eta =
  if eta < 1 then invalid_arg "Sampler.cbd_coeffs: eta < 1";
  Array.init n (fun _ ->
      let acc = ref 0 in
      for _ = 1 to eta do
        if Rng.bool rng then incr acc;
        if Rng.bool rng then decr acc
      done;
      !acc)

let zero_coeffs ~n = Array.make n 0
