(** Chinese-remainder lifting between RNS residues and exact integers.

    The BGV ciphertext modulus is a product [Q = p_0 * … * p_{k-1}] of
    word-sized NTT primes; polynomial arithmetic happens per-prime, but
    decryption and relinearisation digit decomposition need the exact
    value of each coefficient mod [Q].  A [basis] precomputes the
    constants ([Q], [Q/p_i], [(Q/p_i)^{-1} mod p_i]) for one prime
    subset. *)

type basis

val make : int array -> basis
(** [make primes] for pairwise-coprime word-sized primes (each < 2^31). *)

val primes : basis -> int array
val modulus : basis -> Zint.t
(** The product [Q]. *)

val lift : basis -> int array -> Zint.t
(** [lift b residues] returns the unique [x ∈ [0, Q)] with
    [x ≡ residues.(i) (mod p_i)].  Length must match. *)

val lift_centered : basis -> int array -> Zint.t
(** Like {!lift} but returns the representative in [(-Q/2, Q/2]]. *)

val reduce : basis -> Zint.t -> int array
(** [reduce b x] returns the residue vector of [x] (any sign). *)
