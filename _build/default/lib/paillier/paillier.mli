(** The Paillier cryptosystem — the additively homomorphic encryption
    underlying the Yousef et al. (ICDE 2014) baseline.

    Textbook construction with the standard [g = n + 1] simplification:
    [Enc(m) = (1+n)^m · r^n mod n²], [Dec(c) = L(c^λ mod n²) · μ mod n]
    with [L(x) = (x−1)/n], [λ = lcm(p−1, q−1)].

    Homomorphic API: addition of plaintexts by ciphertext
    multiplication, plaintext subtraction, multiplication by a plaintext
    scalar by exponentiation, and re-randomisation.  Message space is
    [Z_n]; the baseline protocols keep all values far below [n/4] so
    masked additions never wrap.

    Key sizes: benchmark presets default to small moduli (pure-OCaml
    bignum exponentiation is the bottleneck of the baseline, exactly as
    Paillier is the bottleneck of the original system); pass
    [~modulus_bits:2048] for production-shaped keys. *)

type public_key
type secret_key

val keygen : ?modulus_bits:int -> Util.Rng.t -> secret_key * public_key
(** Default [modulus_bits] 512. *)

val public_of_secret : secret_key -> public_key
val modulus : public_key -> Zint.t
val modulus_bits : public_key -> int

type ct = Zint.t
(** Ciphertexts are elements of Z_{n²} (kept abstract-by-convention). *)

val encrypt : ?counters:Util.Counters.t -> Util.Rng.t -> public_key -> Zint.t -> ct
(** @raise Invalid_argument if the message is outside [\[0, n)]. *)

val encrypt_int : ?counters:Util.Counters.t -> Util.Rng.t -> public_key -> int -> ct

val decrypt : ?counters:Util.Counters.t -> secret_key -> ct -> Zint.t
val decrypt_int : ?counters:Util.Counters.t -> secret_key -> ct -> int

val add : ?counters:Util.Counters.t -> public_key -> ct -> ct -> ct
(** [Dec(add c1 c2) = m1 + m2 mod n]. *)

val sub : ?counters:Util.Counters.t -> public_key -> ct -> ct -> ct
val add_plain : ?counters:Util.Counters.t -> public_key -> ct -> Zint.t -> ct
val mul_plain : ?counters:Util.Counters.t -> public_key -> ct -> Zint.t -> ct
(** [Dec(mul_plain c k) = k·m mod n]. *)

val rerandomize : ?counters:Util.Counters.t -> Util.Rng.t -> public_key -> ct -> ct

val byte_size : public_key -> int
(** Serialised ciphertext size (2·modulus bits, in bytes). *)
