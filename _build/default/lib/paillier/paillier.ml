module Z = Zint
module Counters = Util.Counters

type public_key = { n : Z.t; n2 : Z.t; bits : int }
type secret_key = { pk : public_key; lambda : Z.t; mu : Z.t }

let record c e = match c with None -> () | Some c -> Counters.record c e

let keygen ?(modulus_bits = 512) rng =
  if modulus_bits < 16 then invalid_arg "Paillier.keygen: modulus too small";
  let half = modulus_bits / 2 in
  let rec pick () =
    let p = Z.random_prime rng ~bits:half in
    let q = Z.random_prime rng ~bits:(modulus_bits - half) in
    if Z.equal p q then pick ()
    else begin
      let n = Z.mul p q in
      (* g = n+1 requires gcd(n, (p-1)(q-1)) = 1, true for distinct
         primes of equal size. *)
      (p, q, n)
    end
  in
  let p, q, n = pick () in
  let n2 = Z.mul n n in
  let lambda = Z.lcm (Z.pred p) (Z.pred q) in
  (* mu = (L(g^lambda mod n^2))^{-1} mod n, with g = n+1:
     (1+n)^lambda = 1 + lambda*n mod n^2, so L(...) = lambda mod n. *)
  let mu = Z.modinv (Z.erem lambda n) n in
  let pk = { n; n2; bits = modulus_bits } in
  ({ pk; lambda; mu }, pk)

let public_of_secret sk = sk.pk
let modulus pk = pk.n
let modulus_bits pk = pk.bits

type ct = Z.t

let encrypt ?counters rng pk m =
  record counters Counters.Encrypt;
  if Z.sign m < 0 || Z.compare m pk.n >= 0 then
    invalid_arg "Paillier.encrypt: message out of range";
  (* (1+n)^m = 1 + m*n (mod n^2), avoiding one full exponentiation. *)
  let gm = Z.erem (Z.add Z.one (Z.mul m pk.n)) pk.n2 in
  let rec random_unit () =
    let r = Z.random_below rng pk.n in
    if Z.is_zero r || not (Z.is_one (Z.gcd r pk.n)) then random_unit () else r
  in
  let r = random_unit () in
  Z.erem (Z.mul gm (Z.powmod r pk.n pk.n2)) pk.n2

let encrypt_int ?counters rng pk m = encrypt ?counters rng pk (Z.of_int m)

let decrypt ?counters sk c =
  record counters Counters.Decrypt;
  let pk = sk.pk in
  let x = Z.powmod c sk.lambda pk.n2 in
  let l = Z.div (Z.pred x) pk.n in
  Z.erem (Z.mul l sk.mu) pk.n

let decrypt_int ?counters sk c = Z.to_int_exn (decrypt ?counters sk c)

let add ?counters pk c1 c2 =
  record counters Counters.Hom_add;
  Z.erem (Z.mul c1 c2) pk.n2

let mul_plain ?counters pk c k =
  record counters Counters.Hom_mul_plain;
  Z.powmod c (Z.erem k pk.n) pk.n2

let sub ?counters pk c1 c2 =
  record counters Counters.Hom_add;
  (* c1 * c2^(n-1) = E(m1 - m2). *)
  Z.erem (Z.mul c1 (Z.powmod c2 (Z.pred pk.n) pk.n2)) pk.n2

let add_plain ?counters pk c m =
  record counters Counters.Hom_add;
  let gm = Z.erem (Z.add Z.one (Z.mul (Z.erem m pk.n) pk.n)) pk.n2 in
  Z.erem (Z.mul c gm) pk.n2

let rerandomize ?counters rng pk c =
  record counters Counters.Hom_add;
  let rec random_unit () =
    let r = Z.random_below rng pk.n in
    if Z.is_zero r || not (Z.is_one (Z.gcd r pk.n)) then random_unit () else r
  in
  let r = random_unit () in
  Z.erem (Z.mul c (Z.powmod r pk.n pk.n2)) pk.n2

let byte_size pk = pk.bits / 4
