type table = {
  p : int;
  n : int;
  psi_rev : int array;      (* psi^brv(i), forward twiddles *)
  psi_inv_rev : int array;  (* psi^-brv(i), inverse twiddles *)
  n_inv : int;
}

let prime t = t.p
let degree t = t.n

let is_pow2 n = n > 0 && n land (n - 1) = 0

let bit_reverse ~bits i =
  let r = ref 0 and i = ref i in
  for _ = 1 to bits do
    r := (!r lsl 1) lor (!i land 1);
    i := !i lsr 1
  done;
  !r

let make_table ~p ~n =
  if not (is_pow2 n) then invalid_arg "Ntt.make_table: n not a power of two";
  if p >= 1 lsl 31 then invalid_arg "Ntt.make_table: p >= 2^31";
  let p64 = Int64.of_int p in
  if not (Prime64.is_prime p64) then invalid_arg "Ntt.make_table: p not prime";
  if (p - 1) mod (2 * n) <> 0 then invalid_arg "Ntt.make_table: p <> 1 mod 2n";
  let psi = Int64.to_int (Prime64.root_of_unity ~p:p64 ~order:(Int64.of_int (2 * n))) in
  let psi_inv = Int64.to_int (Mod64.inv p64 (Int64.of_int psi)) in
  let bits =
    let rec go b m = if m = 1 then b else go (b + 1) (m lsr 1) in
    go 0 n
  in
  let powers base =
    (* tbl.(i) = base^brv(i) mod p *)
    let direct = Array.make n 1 in
    for i = 1 to n - 1 do
      direct.(i) <- direct.(i - 1) * base mod p
    done;
    Array.init n (fun i -> direct.(bit_reverse ~bits i))
  in
  let n_inv = Int64.to_int (Mod64.inv p64 (Int64.of_int n)) in
  { p; n; psi_rev = powers psi; psi_inv_rev = powers psi_inv; n_inv }

let forward t a =
  if Array.length a <> t.n then invalid_arg "Ntt.forward: wrong length";
  let p = t.p and n = t.n and w = t.psi_rev in
  let len = ref n and m = ref 1 in
  while !m < n do
    len := !len / 2;
    for i = 0 to !m - 1 do
      let j1 = 2 * i * !len in
      let s = w.(!m + i) in
      for j = j1 to j1 + !len - 1 do
        let u = a.(j) in
        let v = a.(j + !len) * s mod p in
        let x = u + v in
        a.(j) <- (if x >= p then x - p else x);
        let y = u - v in
        a.(j + !len) <- (if y < 0 then y + p else y)
      done
    done;
    m := !m * 2
  done

let inverse t a =
  if Array.length a <> t.n then invalid_arg "Ntt.inverse: wrong length";
  let p = t.p and n = t.n and w = t.psi_inv_rev in
  let len = ref 1 and m = ref n in
  while !m > 1 do
    let h = !m / 2 in
    let j1 = ref 0 in
    for i = 0 to h - 1 do
      let s = w.(h + i) in
      for j = !j1 to !j1 + !len - 1 do
        let u = a.(j) in
        let v = a.(j + !len) in
        let x = u + v in
        a.(j) <- (if x >= p then x - p else x);
        let y = u - v in
        let y = if y < 0 then y + p else y in
        a.(j + !len) <- y * s mod p
      done;
      j1 := !j1 + (2 * !len)
    done;
    len := !len * 2;
    m := h
  done;
  let ninv = t.n_inv in
  for j = 0 to n - 1 do
    a.(j) <- a.(j) * ninv mod p
  done

let pointwise_mul t dst a b =
  let p = t.p in
  for i = 0 to t.n - 1 do
    dst.(i) <- a.(i) * b.(i) mod p
  done

let pointwise_mul_acc t acc a b =
  let p = t.p in
  for i = 0 to t.n - 1 do
    acc.(i) <- (acc.(i) + (a.(i) * b.(i) mod p)) mod p
  done

let negacyclic_mul t a b =
  let fa = Array.copy a and fb = Array.copy b in
  forward t fa;
  forward t fb;
  pointwise_mul t fa fa fb;
  inverse t fa;
  fa
