lib/modular/ntt.ml: Array Int64 Mod64 Prime64
