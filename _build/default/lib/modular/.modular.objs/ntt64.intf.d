lib/modular/ntt64.mli:
