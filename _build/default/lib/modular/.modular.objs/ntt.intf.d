lib/modular/ntt.mli:
