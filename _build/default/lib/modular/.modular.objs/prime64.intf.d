lib/modular/prime64.mli:
