lib/modular/mod64.mli:
