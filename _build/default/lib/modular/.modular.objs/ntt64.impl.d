lib/modular/ntt64.ml: Array Int64 Mod64 Prime64
