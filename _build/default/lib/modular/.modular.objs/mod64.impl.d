lib/modular/mod64.ml: Int64
