lib/modular/prime64.ml: Hashtbl Int64 List Mod64 Option
