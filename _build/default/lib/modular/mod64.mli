(** Modular arithmetic on [int64] values.

    The RNS ring layer works modulo word-sized primes below 2^31 (so limb
    products fit in the native 63-bit [int]); this module covers the
    remaining cases that need genuinely 64-bit moduli — the BGV plaintext
    modulus [t] (up to ~50 bits, e.g. the paper's prime 1099511627689) and
    primality testing for parameter generation.

    All inputs are canonical residues in [\[0, m)] unless noted; moduli
    must satisfy [1 < m < 2^62]. *)

val add : int64 -> int64 -> int64 -> int64
(** [add m a b] is [(a + b) mod m]. *)

val sub : int64 -> int64 -> int64 -> int64
val neg : int64 -> int64 -> int64

val mul : int64 -> int64 -> int64 -> int64
(** [mul m a b] is [(a * b) mod m], exact for any [m < 2^62].  Uses a
    double-precision quotient estimate with wrap-around correction when
    [m < 2^50] and a shift-and-add ladder otherwise. *)

val pow : int64 -> int64 -> int64 -> int64
(** [pow m b e] for [e >= 0]. *)

val inv : int64 -> int64 -> int64
(** [inv m a] is the inverse of [a] mod [m].
    @raise Failure if not invertible. *)

val reduce : int64 -> int64 -> int64
(** [reduce m x] maps any int64 (including negatives) to [\[0, m)]. *)

val centered : int64 -> int64 -> int64
(** [centered m x] maps a canonical residue to the centered representative
    in [(-m/2, m/2]]. *)
