(** Negacyclic NTT over an [int64] prime modulus.

    Used for the BGV plaintext side: CRT batching packs [n] independent
    Z_t slots into one plaintext polynomial when [t ≡ 1 (mod 2n)].  The
    plaintext prime can exceed 2^31 (the paper uses ≈2^40), so this
    transform runs on [int64] with {!Mod64.mul}; it is executed once per
    encode/decode rather than inside the homomorphic hot loop, so the
    slower multiply is acceptable.  Same layout conventions as {!Ntt}. *)

type table

val make_table : p:int64 -> n:int -> table
(** Requires [n] a power of two, [p] prime with [p ≡ 1 (mod 2n)],
    [p < 2^62]. @raise Invalid_argument otherwise. *)

val prime : table -> int64
val degree : table -> int

val forward : table -> int64 array -> unit
val inverse : table -> int64 array -> unit
