(** Primality, factoring and roots of unity for [int64] values.

    Parameter generation for the ring layer needs NTT-friendly primes
    (p ≡ 1 mod 2N) together with primitive 2N-th roots of unity, and the
    plaintext side needs batching-friendly primes (t ≡ 1 mod 2N as well).
    Primality is the deterministic Miller–Rabin variant with the known
    12-witness base set, valid for all 64-bit inputs; factoring is trial
    division plus Brent-cycle Pollard rho. *)

val is_prime : int64 -> bool
(** Deterministic for all [0 <= n < 2^62]. *)

val factor : int64 -> (int64 * int) list
(** Prime factorisation as (prime, multiplicity), primes ascending.
    [factor 1 = []]. @raise Invalid_argument on [n <= 0]. *)

val primitive_root : int64 -> int64
(** A generator of the multiplicative group of Z_p for prime [p]. *)

val root_of_unity : p:int64 -> order:int64 -> int64
(** [root_of_unity ~p ~order] returns an element of exact multiplicative
    order [order] mod prime [p]. @raise Failure if [order] does not
    divide [p - 1]. *)

val find_ntt_prime : ?min_bits:int -> congruent_mod:int64 -> bits:int -> unit -> int64
(** [find_ntt_prime ~congruent_mod:m ~bits ()] returns the largest prime
    [p < 2^bits] with [p ≡ 1 (mod m)]; with [?min_bits] the search stops
    (raising [Not_found]) below [2^min_bits]. *)

val ntt_primes : congruent_mod:int64 -> bits:int -> count:int -> int64 list
(** The [count] largest distinct primes below [2^bits] that are ≡ 1 mod
    [congruent_mod], descending. @raise Not_found if fewer exist above
    [2^(bits-2)]. *)
