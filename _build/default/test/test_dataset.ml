(* Tests for CSV I/O, synthetic generators, UCI-shaped datasets and
   preprocessing. *)

module Rng = Util.Rng

let test_csv_roundtrip_string () =
  let m = [| [| 1; 2; 3 |]; [| 4; 5; 6 |]; [| -7; 0; 9 |] |] in
  let s = Csv_io.to_string m in
  Alcotest.(check string) "render" "1,2,3\n4,5,6\n-7,0,9\n" s;
  Alcotest.(check bool) "roundtrip" true (Csv_io.of_string s = m)

let test_csv_header () =
  let m = [| [| 1; 2 |] |] in
  let s = Csv_io.to_string ~header:[ "a"; "b" ] m in
  Alcotest.(check string) "with header" "a,b\n1,2\n" s;
  Alcotest.(check bool) "skip header" true (Csv_io.of_string ~has_header:true s = m)

let test_csv_file_roundtrip () =
  let m = [| [| 10; 20 |]; [| 30; 40 |] |] in
  let path = Filename.temp_file "sknn" ".csv" in
  Csv_io.write path m;
  let back = Csv_io.read path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (back = m)

let test_csv_errors () =
  Alcotest.(check bool) "bad int raises" true
    (try ignore (Csv_io.of_string "1,x\n") ; false with Failure _ -> true);
  Alcotest.(check bool) "ragged raises" true
    (try ignore (Csv_io.of_string "1,2\n3\n") ; false with Failure _ -> true);
  Alcotest.(check int) "empty ok" 0 (Array.length (Csv_io.of_string ""))

let test_uniform_shape () =
  let rng = Rng.of_int 5 in
  let db = Synthetic.uniform rng ~n:100 ~d:7 ~max_value:42 in
  Alcotest.(check int) "rows" 100 (Array.length db);
  Array.iter
    (fun row ->
      Alcotest.(check int) "cols" 7 (Array.length row);
      Array.iter
        (fun v -> Alcotest.(check bool) "range" true (v >= 0 && v <= 42))
        row)
    db

let test_uniform_deterministic () =
  let a = Synthetic.uniform (Rng.of_int 9) ~n:10 ~d:3 ~max_value:100 in
  let b = Synthetic.uniform (Rng.of_int 9) ~n:10 ~d:3 ~max_value:100 in
  Alcotest.(check bool) "same seed same data" true (a = b)

let test_clustered () =
  let rng = Rng.of_int 11 in
  let db = Synthetic.clustered rng ~n:200 ~d:2 ~clusters:4 ~spread:2.0 ~max_value:1000 in
  Alcotest.(check int) "rows" 200 (Array.length db);
  Array.iter
    (fun row ->
      Array.iter (fun v -> Alcotest.(check bool) "clamped" true (v >= 0 && v <= 1000)) row)
    db;
  (* Points assigned round-robin to 4 clusters with spread 2: points 0
     and 4 share a centre and should be close; 0 and 1 usually are not. *)
  let d04 = Distance.squared_euclidean db.(0) db.(4) in
  Alcotest.(check bool) "same-cluster proximity" true (d04 < 400)

let test_query_like () =
  let rng = Rng.of_int 13 in
  let db = Synthetic.uniform rng ~n:50 ~d:4 ~max_value:90 in
  for _ = 1 to 20 do
    let q = Synthetic.query_like rng db in
    Alcotest.(check int) "dim" 4 (Array.length q);
    Array.iteri
      (fun j v ->
        let lo, hi = (Preprocess.column_ranges db).(j) in
        Alcotest.(check bool) "within column range" true (v >= lo && v <= hi))
      q
  done

let test_uci_shapes () =
  let rng = Rng.of_int 17 in
  let cc = Uci_like.cervical_cancer rng in
  Alcotest.(check int) "cancer rows" Uci_like.cervical_cancer_spec.Uci_like.n (Array.length cc);
  Alcotest.(check int) "cancer cols" Uci_like.cervical_cancer_spec.Uci_like.d
    (Array.length cc.(0));
  let credit = Uci_like.credit_default ~n:500 rng in
  Alcotest.(check int) "credit rows (scaled)" 500 (Array.length credit);
  Alcotest.(check int) "credit cols" Uci_like.credit_default_spec.Uci_like.d
    (Array.length credit.(0));
  Array.iter
    (fun row -> Array.iter (fun v -> Alcotest.(check bool) "non-negative" true (v >= 0)) row)
    cc;
  Array.iter
    (fun row -> Array.iter (fun v -> Alcotest.(check bool) "non-negative" true (v >= 0)) row)
    credit

let test_uci_age_column () =
  let rng = Rng.of_int 19 in
  let cc = Uci_like.cervical_cancer rng in
  Array.iter
    (fun row -> Alcotest.(check bool) "age plausible" true (row.(0) >= 13 && row.(0) <= 84))
    cc

let test_shift_non_negative () =
  let db = [| [| -5; 10 |]; [| 0; -2 |]; [| 3; 4 |] |] in
  let s = Preprocess.shift_non_negative db in
  Alcotest.(check bool) "all non-negative" true
    (Array.for_all (fun r -> Array.for_all (fun v -> v >= 0) r) s);
  (* Shifting preserves within-column differences exactly. *)
  Alcotest.(check int) "difference preserved" 3 (s.(2).(0) - s.(1).(0))

let test_scale_to_max () =
  let db = [| [| 0; 1000 |]; [| 50; 3000 |]; [| 100; 2000 |] |] in
  let s = Preprocess.scale_to_max ~max_value:255 db in
  Alcotest.(check int) "min -> 0" 0 s.(0).(0);
  Alcotest.(check int) "max -> 255" 255 s.(2).(0);
  Alcotest.(check int) "mid -> ~128" 128 s.(1).(0);
  Alcotest.(check int) "col2 max" 255 s.(1).(1);
  let const = [| [| 7 |]; [| 7 |] |] in
  Alcotest.(check int) "constant column -> 0" 0 (Preprocess.scale_to_max ~max_value:10 const).(0).(0)

let test_scale_preserves_order () =
  let rng = Rng.of_int 23 in
  let db = Synthetic.uniform rng ~n:40 ~d:1 ~max_value:100000 in
  let s = Preprocess.scale_to_max ~max_value:255 db in
  for i = 0 to 38 do
    for j = i + 1 to 39 do
      if db.(i).(0) < db.(j).(0) then
        Alcotest.(check bool) "order kept (weakly)" true (s.(i).(0) <= s.(j).(0))
    done
  done

let test_required_distance_bits () =
  Alcotest.(check int) "2d bytes" 17 (Preprocess.required_distance_bits ~d:2 ~max_value:255);
  Alcotest.(check int) "degenerate" 0 (Preprocess.required_distance_bits ~d:1 ~max_value:0)

let () =
  Alcotest.run "dataset"
    [ ("csv",
       [ Alcotest.test_case "string roundtrip" `Quick test_csv_roundtrip_string;
         Alcotest.test_case "header" `Quick test_csv_header;
         Alcotest.test_case "file roundtrip" `Quick test_csv_file_roundtrip;
         Alcotest.test_case "errors" `Quick test_csv_errors ]);
      ("synthetic",
       [ Alcotest.test_case "uniform shape" `Quick test_uniform_shape;
         Alcotest.test_case "deterministic" `Quick test_uniform_deterministic;
         Alcotest.test_case "clustered" `Quick test_clustered;
         Alcotest.test_case "query_like" `Quick test_query_like ]);
      ("uci-like",
       [ Alcotest.test_case "shapes" `Quick test_uci_shapes;
         Alcotest.test_case "age column" `Quick test_uci_age_column ]);
      ("preprocess",
       [ Alcotest.test_case "shift" `Quick test_shift_non_negative;
         Alcotest.test_case "scale" `Quick test_scale_to_max;
         Alcotest.test_case "scale order" `Quick test_scale_preserves_order;
         Alcotest.test_case "distance bits" `Quick test_required_distance_bits ]) ]
