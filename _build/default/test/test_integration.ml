(* Cross-module integration tests: CSV -> preprocess -> protocol flows,
   cross-protocol agreement, and the production-shaped parameter set. *)

module Rng = Util.Rng

let test_csv_to_protocol_pipeline () =
  (* The full user path: generate data, write CSV, read it back,
     preprocess, deploy, query. *)
  let rng = Rng.of_int 211 in
  let raw = Synthetic.clustered rng ~n:60 ~d:3 ~clusters:3 ~spread:30.0 ~max_value:10000 in
  let path = Filename.temp_file "sknn_it" ".csv" in
  Csv_io.write path raw;
  let loaded = Csv_io.read path in
  Sys.remove path;
  Alcotest.(check bool) "csv identity" true (loaded = raw);
  let db = Preprocess.scale_to_max ~max_value:255 loaded in
  let dep = Protocol.deploy ~rng (Config.standard ()) ~db in
  let q = Synthetic.query_like rng db in
  let r = Protocol.query dep ~query:q ~k:5 in
  Alcotest.(check bool) "pipeline exact" true (Protocol.exact dep ~db ~query:q r)

let test_three_way_agreement () =
  (* Both layouts of our protocol, the Paillier baseline and the
     plaintext oracle agree on one instance. *)
  let rng = Rng.of_int 223 in
  let db = Synthetic.uniform rng ~n:14 ~d:3 ~max_value:20 in
  let q = Synthetic.query_like rng db in
  let k = 4 in
  let truth = Plain_knn.kth_smallest_distances ~k ~query:q db in
  let dists ps =
    let a = Array.map (fun p -> Distance.squared_euclidean q p) ps in
    Array.sort compare a;
    a
  in
  let ours config =
    let dep = Protocol.deploy ~rng (config ()) ~db in
    dists (Protocol.query dep ~query:q ~k).Protocol.neighbours
  in
  Alcotest.(check (array int)) "standard layout" truth (ours Config.standard);
  Alcotest.(check (array int)) "fast layout" truth (ours Config.fast);
  let dep_b = Sknn_m.deploy ~rng ~modulus_bits:128 ~db () in
  Alcotest.(check (array int)) "paillier baseline" truth
    (dists (Sknn_m.query dep_b ~query:q ~k).Sknn_m.neighbours)

let test_secure_preset_end_to_end () =
  (* The production-shaped ring (n = 8192, ~128-bit estimated security):
     one tiny query proves the whole stack works at real parameters. *)
  let config = Config.secure () in
  Alcotest.(check bool) "estimated security >= 120 bits" true
    (Params.security_bits config.Config.bgv >= 120.0);
  let rng = Rng.of_int 227 in
  let db = Synthetic.uniform rng ~n:6 ~d:2 ~max_value:60 in
  let dep = Protocol.deploy ~rng config ~db in
  let q = Synthetic.query_like rng db in
  let r = Protocol.query dep ~query:q ~k:2 in
  Alcotest.(check bool) "exact at secure parameters" true (Protocol.exact dep ~db ~query:q r)

let test_cost_model_fast_layout () =
  let rng = Rng.of_int 229 in
  let n = 40 and d = 5 and k = 3 in
  let db = Synthetic.uniform rng ~n ~d ~max_value:200 in
  let dep = Protocol.deploy ~rng (Config.fast ()) ~db in
  let r = Protocol.query dep ~query:(Synthetic.query_like rng db) ~k in
  let m = Cost.measured r in
  Alcotest.(check int) "rounds" 1 m.Cost.rounds;
  Alcotest.(check int) "B decryptions = n" n m.Cost.decryptions;
  Alcotest.(check int) "B encryptions = nk" (n * k) m.Cost.encryptions;
  Alcotest.(check bool) "bytes measured" true (m.Cost.bytes > 0)

let test_reproducibility_across_deployments () =
  (* Everything — keys, encryption randomness, masks, permutations — is
     derived from the supplied seed, so two runs agree bit for bit. *)
  let db = Synthetic.uniform (Rng.of_int 233) ~n:25 ~d:2 ~max_value:99 in
  let q = [| 40; 41 |] in
  let run () =
    let dep = Protocol.deploy ~rng:(Rng.of_int 7777) (Config.fast ()) ~db in
    let r = Protocol.query ~rng:(Rng.of_int 8888) dep ~query:q ~k:6 in
    (r.Protocol.neighbours, Leakage.view_multiset r.Protocol.view_b,
     Transcript.total_bytes r.Protocol.transcript)
  in
  Alcotest.(check bool) "identical runs" true (run () = run ())

let test_queries_share_deployment () =
  (* Many queries against one deployment, interleaving layouts of k. *)
  let rng = Rng.of_int 239 in
  let db = Synthetic.uniform rng ~n:30 ~d:4 ~max_value:150 in
  let dep = Protocol.deploy ~rng (Config.standard ()) ~db in
  List.iter
    (fun k ->
      let q = Synthetic.query_like rng db in
      let r = Protocol.query dep ~query:q ~k in
      Alcotest.(check bool) (Printf.sprintf "k=%d" k) true (Protocol.exact dep ~db ~query:q r))
    [ 1; 7; 2; 30; 3 ]

let test_communication_independent_of_d () =
  (* §5.1: the A->B message size depends only on n, never on d. *)
  let bytes_for d =
    let rng = Rng.of_int (241 + d) in
    let db = Synthetic.uniform rng ~n:15 ~d ~max_value:100 in
    let dep = Protocol.deploy ~rng (Config.standard ()) ~db in
    let r = Protocol.query dep ~query:(Synthetic.query_like rng db) ~k:2 in
    List.fold_left
      (fun acc e ->
        if e.Transcript.sender = Transcript.Party_a && e.Transcript.receiver = Transcript.Party_b
        then acc + e.Transcript.bytes
        else acc)
      0
      (Transcript.entries r.Protocol.transcript)
  in
  let b2 = bytes_for 2 and b8 = bytes_for 8 in
  (* Level choices can differ by one modulus switch; sizes must be equal
     up to that, not proportional to d. *)
  let ratio = float_of_int b8 /. float_of_int b2 in
  Alcotest.(check bool)
    (Printf.sprintf "A->B bytes comparable across d (%d vs %d)" b2 b8)
    true
    (ratio < 1.5 && ratio > 0.6)

let test_protocol_over_the_wire () =
  (* Drive the three protocol phases manually, forcing every A<->B
     ciphertext through the binary codec — what real sockets would
     carry — and still get exact results. *)
  let rng = Rng.of_int 251 in
  let config = Config.standard () in
  let params = config.Config.bgv in
  let db = Synthetic.uniform rng ~n:18 ~d:3 ~max_value:120 in
  let dep = Protocol.deploy ~rng config ~db in
  let a = Protocol.party_a dep and b = Protocol.party_b dep and cl = Protocol.client dep in
  let q = Synthetic.query_like rng db in
  let k = 4 in
  let q_enc = Entities.Client.encrypt_query cl rng q in
  let state, masked = Entities.Party_a.compute_distances a rng q_enc in
  (* A -> B over the wire. *)
  let masked_wire =
    Array.map (fun ct -> Bgv.ct_of_bytes params (Bgv.ct_to_bytes ct)) masked
  in
  let rows, _view = Entities.Party_b.find_neighbours b rng masked_wire ~k in
  (* B -> A over the wire. *)
  let rows_wire =
    Array.map (Array.map (fun ct -> Bgv.ct_of_bytes params (Bgv.ct_to_bytes ct))) rows
  in
  let results = Entities.Party_a.return_knn a state rows_wire in
  (* A -> client over the wire. *)
  let results_wire =
    Array.map (fun ct -> Bgv.ct_of_bytes params (Bgv.ct_to_bytes ct)) results
  in
  let neighbours = Entities.Client.decrypt_points cl ~d:3 results_wire in
  let expected = Plain_knn.kth_smallest_distances ~k ~query:q db in
  let got = Array.map (fun p -> Distance.squared_euclidean q p) neighbours in
  Array.sort compare got;
  Alcotest.(check (array int)) "exact through the codec" expected got

let () =
  Alcotest.run "integration"
    [ ("pipelines",
       [ Alcotest.test_case "csv -> protocol" `Quick test_csv_to_protocol_pipeline;
         Alcotest.test_case "three-way agreement" `Slow test_three_way_agreement;
         Alcotest.test_case "secure preset" `Slow test_secure_preset_end_to_end ]);
      ("behaviour",
       [ Alcotest.test_case "cost model (fast layout)" `Quick test_cost_model_fast_layout;
         Alcotest.test_case "reproducibility" `Quick test_reproducibility_across_deployments;
         Alcotest.test_case "shared deployment" `Quick test_queries_share_deployment;
         Alcotest.test_case "A->B bytes independent of d" `Quick
           test_communication_independent_of_d;
         Alcotest.test_case "protocol over the wire" `Quick test_protocol_over_the_wire ]) ]
