(* Tests for the plaintext k-NN reference layer. *)

module Rng = Util.Rng

let test_squared_euclidean () =
  Alcotest.(check int) "2d" 25 (Distance.squared_euclidean [| 0; 0 |] [| 3; 4 |]);
  Alcotest.(check int) "same point" 0 (Distance.squared_euclidean [| 7; 7 |] [| 7; 7 |]);
  Alcotest.(check int) "1d" 81 (Distance.squared_euclidean [| 10 |] [| 19 |]);
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Distance.squared_euclidean: dimension mismatch")
    (fun () -> ignore (Distance.squared_euclidean [| 1 |] [| 1; 2 |]))

let test_other_metrics () =
  Alcotest.(check int) "manhattan" 7 (Distance.manhattan [| 0; 0 |] [| 3; 4 |]);
  Alcotest.(check int) "chebyshev" 4 (Distance.chebyshev [| 0; 0 |] [| 3; 4 |]);
  Alcotest.(check int) "max bound" (2 * 255 * 255)
    (Distance.max_squared_euclidean ~d:2 ~max_value:255)

let test_point () =
  Alcotest.(check int) "dim" 3 (Point.dim [| 1; 2; 3 |]);
  Point.validate [| 0; 5; 100 |];
  Alcotest.(check bool) "equal" true (Point.equal [| 1; 2 |] [| 1; 2 |]);
  Alcotest.check_raises "negative coordinate"
    (Invalid_argument "Point.validate: coordinate -1 out of [0, 100]")
    (fun () -> Point.validate ~max_value:100 [| 3; -1 |])

let db_small =
  [| [| 0; 0 |]; [| 1; 1 |]; [| 5; 5 |]; [| 2; 2 |]; [| 10; 10 |]; [| 1; 0 |] |]

let test_knn_basic () =
  let r = Plain_knn.knn ~k:3 ~query:[| 0; 0 |] db_small in
  Alcotest.(check (array int)) "3nn of origin" [| 0; 5; 1 |] r;
  let r1 = Plain_knn.knn ~k:1 ~query:[| 9; 9 |] db_small in
  Alcotest.(check (array int)) "1nn" [| 4 |] r1;
  let all = Plain_knn.knn ~k:6 ~query:[| 0; 0 |] db_small in
  Alcotest.(check int) "k=n returns all" 6 (Array.length all)

let test_knn_bounds () =
  Alcotest.check_raises "k=0" (Invalid_argument "Plain_knn: k=0 out of [1, 6]")
    (fun () -> ignore (Plain_knn.knn ~k:0 ~query:[| 0; 0 |] db_small));
  Alcotest.check_raises "k>n" (Invalid_argument "Plain_knn: k=7 out of [1, 6]")
    (fun () -> ignore (Plain_knn.knn ~k:7 ~query:[| 0; 0 |] db_small))

let test_knn_ties () =
  (* Four corners equidistant from the centre; any 2 of them is a valid
     2-NN answer by the distance-multiset criterion. *)
  let db = [| [| 0; 0 |]; [| 0; 2 |]; [| 2; 0 |]; [| 2; 2 |]; [| 9; 9 |] |] in
  let q = [| 1; 1 |] in
  let r = Plain_knn.knn ~k:2 ~query:q db in
  Alcotest.(check bool) "sorted variant valid" true (Plain_knn.same_answer ~k:2 ~query:q db r);
  let rs = Plain_knn.knn_streaming ~k:2 ~query:q db in
  Alcotest.(check bool) "streaming variant valid" true
    (Plain_knn.same_answer ~k:2 ~query:q db rs)

let test_streaming_agrees_with_sorted () =
  let rng = Rng.of_int 3 in
  for _ = 1 to 50 do
    let n = Rng.int_range rng 1 60 in
    let d = Rng.int_range rng 1 6 in
    let db = Synthetic.uniform rng ~n ~d ~max_value:40 in
    let q = Synthetic.query_like rng db in
    let k = Rng.int_range rng 1 n in
    let a = Plain_knn.knn ~k ~query:q db in
    let b = Plain_knn.knn_streaming ~k ~query:q db in
    (* Distance multisets must agree even when tie-broken differently. *)
    let dist i = Distance.squared_euclidean q db.(i) in
    let da = Array.map dist a and db' = Array.map dist b in
    Array.sort compare da;
    Array.sort compare db';
    Alcotest.(check (array int)) "same distance multiset" da db';
    Alcotest.(check bool) "sorted valid" true (Plain_knn.same_answer ~k ~query:q db a);
    Alcotest.(check bool) "streaming valid" true (Plain_knn.same_answer ~k ~query:q db b)
  done

let test_kth_smallest () =
  Alcotest.(check (array int)) "k smallest" [| 0; 1 |]
    (Plain_knn.kth_smallest_distances ~k:2 ~query:[| 0; 0 |] db_small)

let test_same_answer_negative () =
  let q = [| 0; 0 |] in
  Alcotest.(check bool) "wrong set rejected" false
    (Plain_knn.same_answer ~k:2 ~query:q db_small [| 2; 4 |]);
  Alcotest.(check bool) "duplicate indices rejected" false
    (Plain_knn.same_answer ~k:2 ~query:q db_small [| 0; 0 |]);
  Alcotest.(check bool) "out of range rejected" false
    (Plain_knn.same_answer ~k:2 ~query:q db_small [| 0; 17 |])

let test_manhattan_knn () =
  let db = [| [| 0; 0 |]; [| 3; 3 |]; [| 5; 0 |] |] in
  let r = Plain_knn.knn ~metric:Distance.manhattan ~k:1 ~query:[| 4; 1 |] db in
  (* L1: distances 5, 3, 2 -> index 2 wins (L2 would pick index 1). *)
  Alcotest.(check (array int)) "manhattan nn" [| 2 |] r

let prop_knn_returns_minimal =
  QCheck.Test.make ~count:100 ~name:"knn indices achieve the k smallest distances"
    QCheck.(triple (int_range 1 40) (int_range 1 5) (int_range 0 1000))
    (fun (n, d, seed) ->
      let rng = Rng.of_int seed in
      let db = Synthetic.uniform rng ~n ~d ~max_value:30 in
      let q = Synthetic.query_like rng db in
      let k = 1 + (seed mod n) in
      Plain_knn.same_answer ~k ~query:q db (Plain_knn.knn ~k ~query:q db))

let () =
  Alcotest.run "knn"
    [ ("distance",
       [ Alcotest.test_case "squared euclidean" `Quick test_squared_euclidean;
         Alcotest.test_case "other metrics" `Quick test_other_metrics;
         Alcotest.test_case "point" `Quick test_point ]);
      ("plain knn",
       [ Alcotest.test_case "basic" `Quick test_knn_basic;
         Alcotest.test_case "bounds" `Quick test_knn_bounds;
         Alcotest.test_case "ties" `Quick test_knn_ties;
         Alcotest.test_case "streaming = sorted" `Quick test_streaming_agrees_with_sorted;
         Alcotest.test_case "kth smallest" `Quick test_kth_smallest;
         Alcotest.test_case "same_answer negatives" `Quick test_same_answer_negative;
         Alcotest.test_case "manhattan" `Quick test_manhattan_knn ]);
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_knn_returns_minimal ]) ]
