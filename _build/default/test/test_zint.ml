(* Tests for the bignum substrate: exact arithmetic, division invariants,
   number theory, primality, radix I/O. *)

module Z = Zint
module Rng = Util.Rng

let z = Z.of_int
let zs = Z.of_string

let check_z msg expected actual =
  Alcotest.(check string) msg (Z.to_string expected) (Z.to_string actual)

(* A generator of structurally interesting bignums: random bit-length up to
   [bits], random sign. *)
let arbitrary_zint ?(bits = 400) () =
  let gen =
    QCheck.Gen.(
      let* nbits = int_range 0 bits in
      let* seed = int_range 0 max_int in
      let* negative = QCheck.Gen.bool in
      let rng = Rng.of_int seed in
      let v = Z.random_bits rng nbits in
      return (if negative then Z.neg v else v))
  in
  QCheck.make ~print:Z.to_string gen

let arbitrary_pos_zint ?(bits = 400) () =
  let gen =
    QCheck.Gen.(
      let* nbits = int_range 1 bits in
      let* seed = int_range 0 max_int in
      let rng = Rng.of_int seed in
      let v = Z.random_bits rng nbits in
      return (Z.succ v))
  in
  QCheck.make ~print:Z.to_string gen

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_constants () =
  check_z "zero" (z 0) Z.zero;
  check_z "one" (z 1) Z.one;
  check_z "two" (z 2) Z.two;
  check_z "minus_one" (z (-1)) Z.minus_one;
  Alcotest.(check bool) "zero is zero" true (Z.is_zero Z.zero);
  Alcotest.(check bool) "one is one" true (Z.is_one Z.one);
  Alcotest.(check int) "sign 0" 0 (Z.sign Z.zero);
  Alcotest.(check int) "sign +" 1 (Z.sign (z 42));
  Alcotest.(check int) "sign -" (-1) (Z.sign (z (-42)))

let test_of_to_int () =
  List.iter
    (fun n ->
      Alcotest.(check (option int))
        (Printf.sprintf "roundtrip %d" n)
        (Some n)
        (Z.to_int_opt (z n)))
    [ 0; 1; -1; 42; -42; 1 lsl 30; (1 lsl 62) - 1; -((1 lsl 62) - 1); 123456789 ]

let test_of_int64 () =
  List.iter
    (fun n ->
      Alcotest.(check string)
        (Int64.to_string n)
        (Int64.to_string n)
        (Z.to_string (Z.of_int64 n)))
    [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 4611686018427387904L ]

let test_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Z.to_string (zs s)))
    [ "0"; "1"; "-1"; "123456789012345678901234567890";
      "-98765432109876543210987654321098765432109876543210";
      "1000000000"; "999999999"; "1000000001";
      "340282366920938463463374607431768211456" (* 2^128 *) ]

let test_string_invalid () =
  List.iter
    (fun s ->
      Alcotest.check_raises s (Invalid_argument
        (if s = "" then "Zint.of_string: empty"
         else if s = "-" || s = "+" then "Zint.of_string: no digits"
         else "Zint.of_string: bad digit"))
        (fun () -> ignore (zs s)))
    [ ""; "-"; "+"; "12a3"; "1 2" ]

let test_add_sub_basic () =
  check_z "1+1" (z 2) (Z.add Z.one Z.one);
  check_z "big add"
    (zs "246913578024691357802469135780")
    (Z.add (zs "123456789012345678901234567890") (zs "123456789012345678901234567890"));
  check_z "carry chain" (zs "4294967296") (Z.add (zs "4294967295") Z.one);
  check_z "a - a = 0" Z.zero (Z.sub (zs "99999999999999999999") (zs "99999999999999999999"));
  check_z "sub to negative" (z (-1)) (Z.sub (z 41) (z 42));
  check_z "mixed signs" (z 5) (Z.add (z 10) (z (-5)))

let test_mul_basic () =
  check_z "3*4" (z 12) (Z.mul (z 3) (z 4));
  check_z "neg*pos" (z (-12)) (Z.mul (z (-3)) (z 4));
  check_z "neg*neg" (z 12) (Z.mul (z (-3)) (z (-4)));
  check_z "by zero" Z.zero (Z.mul (zs "123456789123456789") Z.zero);
  check_z "2^64"
    (zs "18446744073709551616")
    (Z.mul (zs "4294967296") (zs "4294967296"));
  (* A known large product: (10^30 + 7) * (10^25 + 3) *)
  check_z "large product"
    (zs "10000000000000000000000003000070000000000000000000000021")
    (Z.mul (Z.add (Z.pow (z 10) 30) (z 7)) (Z.add (Z.pow (z 10) 25) (z 3)))

let test_karatsuba_consistency () =
  (* Force operands above the Karatsuba threshold (32 limbs = 992 bits). *)
  let rng = Rng.of_int 7 in
  for _ = 1 to 10 do
    let a = Z.random_bits rng 2500 and b = Z.random_bits rng 2100 in
    (* (a+b)^2 = a^2 + 2ab + b^2 exercises both mul paths coherently. *)
    let lhs = Z.sqr (Z.add a b) in
    let rhs = Z.add (Z.add (Z.sqr a) (Z.mul (Z.mul_int (Z.mul a b) 2) Z.one)) (Z.sqr b) in
    check_z "karatsuba identity" lhs rhs
  done

let test_divmod_basic () =
  let q, r = Z.divmod (z 17) (z 5) in
  check_z "17/5 q" (z 3) q;
  check_z "17/5 r" (z 2) r;
  let q, r = Z.divmod (z (-17)) (z 5) in
  check_z "-17/5 q (trunc)" (z (-3)) q;
  check_z "-17/5 r (trunc)" (z (-2)) r;
  let q, r = Z.ediv_rem (z (-17)) (z 5) in
  check_z "-17/5 q (eucl)" (z (-4)) q;
  check_z "-17/5 r (eucl)" (z 3) r;
  let q, r = Z.ediv_rem (z (-17)) (z (-5)) in
  check_z "-17/-5 q (eucl)" (z 4) q;
  check_z "-17/-5 r (eucl)" (z 3) r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Z.divmod Z.one Z.zero))

let test_divmod_knuth_addback () =
  (* Inputs engineered to hit the rare Knuth-D "add back" branch: divisor
     just above a power of the base with a dividend forcing qhat
     overestimation. *)
  let b31 = Z.shift_left Z.one 31 in
  let v = Z.add (Z.mul b31 b31) Z.one in (* 2^62 + 1 : two+ limbs *)
  let u = Z.sub (Z.mul v (Z.sub b31 Z.one)) Z.one in
  let q, r = Z.divmod u v in
  check_z "addback identity" u (Z.add (Z.mul q v) r);
  Alcotest.(check bool) "r < v" true (Z.compare (Z.abs r) (Z.abs v) < 0)

let test_pow () =
  check_z "2^10" (z 1024) (Z.pow (z 2) 10);
  check_z "x^0" Z.one (Z.pow (zs "99999999999") 0);
  check_z "0^0" Z.one (Z.pow Z.zero 0);
  check_z "0^5" Z.zero (Z.pow Z.zero 5);
  check_z "10^40" (zs ("1" ^ String.make 40 '0')) (Z.pow (z 10) 40);
  Alcotest.check_raises "neg exponent" (Invalid_argument "Zint.pow: negative exponent")
    (fun () -> ignore (Z.pow (z 2) (-1)))

let test_shifts () =
  check_z "1 << 100" (Z.pow (z 2) 100) (Z.shift_left Z.one 100);
  check_z "shift back" Z.one (Z.shift_right (Z.shift_left Z.one 100) 100);
  check_z "17 >> 2" (z 4) (Z.shift_right (z 17) 2);
  check_z "shift of 0" Z.zero (Z.shift_left Z.zero 31);
  check_z "mixed shift"
    (Z.mul (zs "123456789") (Z.pow (z 2) 45))
    (Z.shift_left (zs "123456789") 45)

let test_numbits_testbit () =
  Alcotest.(check int) "numbits 0" 0 (Z.numbits Z.zero);
  Alcotest.(check int) "numbits 1" 1 (Z.numbits Z.one);
  Alcotest.(check int) "numbits 255" 8 (Z.numbits (z 255));
  Alcotest.(check int) "numbits 256" 9 (Z.numbits (z 256));
  Alcotest.(check int) "numbits 2^100" 101 (Z.numbits (Z.pow (z 2) 100));
  Alcotest.(check bool) "bit 0 of 5" true (Z.testbit (z 5) 0);
  Alcotest.(check bool) "bit 1 of 5" false (Z.testbit (z 5) 1);
  Alcotest.(check bool) "bit 2 of 5" true (Z.testbit (z 5) 2);
  Alcotest.(check bool) "bit 100 of 2^100" true (Z.testbit (Z.pow (z 2) 100) 100)

let test_gcd_egcd () =
  check_z "gcd 12 18" (z 6) (Z.gcd (z 12) (z 18));
  check_z "gcd neg" (z 6) (Z.gcd (z (-12)) (z 18));
  check_z "gcd 0 x" (z 7) (Z.gcd Z.zero (z 7));
  let a = zs "123456789012345678901234567890" and b = zs "987654321098765432109876543210" in
  let g, u, v = Z.egcd a b in
  check_z "bezout" g (Z.add (Z.mul u a) (Z.mul v b));
  check_z "gcd consistency" g (Z.gcd a b)

let test_modinv () =
  let m = zs "1000000007" in
  let a = zs "123456789" in
  let inv = Z.modinv a m in
  check_z "a * a^-1 mod m" Z.one (Z.erem (Z.mul a inv) m);
  Alcotest.check_raises "non invertible" (Failure "Zint.modinv: not invertible")
    (fun () -> ignore (Z.modinv (z 6) (z 9)))

let test_powmod () =
  check_z "3^4 mod 5" (z 1) (Z.powmod (z 3) (z 4) (z 5));
  check_z "x^0 mod m" Z.one (Z.powmod (zs "987654321") Z.zero (zs "1000003"));
  check_z "mod 1" Z.zero (Z.powmod (z 5) (z 5) Z.one);
  (* Fermat's little theorem for the paper's plaintext prime p. *)
  let p = zs "1099511627689" in
  check_z "fermat" Z.one (Z.powmod (zs "31337") (Z.pred p) p)

let test_primality_known () =
  let rng = Rng.of_int 11 in
  let primes = [ "2"; "3"; "5"; "104729"; "1099511627689"; "170141183460469231731687303715884105727" ] in
  let composites = [ "1"; "0"; "4"; "104730"; "1099511627690";
                     "340282366920938463463374607431768211455";
                     (* Carmichael numbers *) "561"; "41041"; "825265" ] in
  List.iter
    (fun s -> Alcotest.(check bool) ("prime " ^ s) true (Z.is_probable_prime rng (zs s)))
    primes;
  List.iter
    (fun s -> Alcotest.(check bool) ("composite " ^ s) false (Z.is_probable_prime rng (zs s)))
    composites

let test_random_prime () =
  let rng = Rng.of_int 13 in
  List.iter
    (fun bits ->
      let p = Z.random_prime rng ~bits in
      Alcotest.(check int) (Printf.sprintf "%d-bit width" bits) bits (Z.numbits p);
      Alcotest.(check bool) "is prime" true (Z.is_probable_prime rng p))
    [ 8; 16; 32; 64; 128; 256 ]

let test_next_prime () =
  let rng = Rng.of_int 17 in
  check_z "after 0" (z 2) (Z.next_prime rng Z.zero);
  check_z "after 2" (z 3) (Z.next_prime rng (z 2));
  check_z "after 13" (z 17) (Z.next_prime rng (z 13));
  check_z "after 10^9" (zs "1000000007") (Z.next_prime rng (zs "1000000000"))

let test_lcm () =
  check_z "lcm 4 6" (z 12) (Z.lcm (z 4) (z 6));
  check_z "lcm with 0" Z.zero (Z.lcm Z.zero (z 5))

let test_random_below_range () =
  let rng = Rng.of_int 19 in
  let bound = zs "1000000000000000000000" in
  for _ = 1 to 200 do
    let v = Z.random_below rng bound in
    Alcotest.(check bool) "0 <= v" true (Z.sign v >= 0);
    Alcotest.(check bool) "v < bound" true (Z.compare v bound < 0)
  done

let test_to_float () =
  Alcotest.(check (float 1e-6)) "42." 42.0 (Z.to_float (z 42));
  Alcotest.(check (float 1e-6)) "-42." (-42.0) (Z.to_float (z (-42)));
  let big = Z.pow (z 2) 80 in
  Alcotest.(check (float 1e6)) "2^80" (2.0 ** 80.0) (Z.to_float big)

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let prop_add_commutative =
  QCheck.Test.make ~count:300 ~name:"add commutative"
    (QCheck.pair (arbitrary_zint ()) (arbitrary_zint ()))
    (fun (a, b) -> Z.equal (Z.add a b) (Z.add b a))

let prop_add_associative =
  QCheck.Test.make ~count:300 ~name:"add associative"
    (QCheck.triple (arbitrary_zint ()) (arbitrary_zint ()) (arbitrary_zint ()))
    (fun (a, b, c) -> Z.equal (Z.add (Z.add a b) c) (Z.add a (Z.add b c)))

let prop_sub_inverse =
  QCheck.Test.make ~count:300 ~name:"a - b + b = a"
    (QCheck.pair (arbitrary_zint ()) (arbitrary_zint ()))
    (fun (a, b) -> Z.equal (Z.add (Z.sub a b) b) a)

let prop_mul_commutative =
  QCheck.Test.make ~count:300 ~name:"mul commutative"
    (QCheck.pair (arbitrary_zint ()) (arbitrary_zint ()))
    (fun (a, b) -> Z.equal (Z.mul a b) (Z.mul b a))

let prop_mul_distributes =
  QCheck.Test.make ~count:300 ~name:"mul distributes over add"
    (QCheck.triple (arbitrary_zint ~bits:600 ()) (arbitrary_zint ~bits:600 ())
       (arbitrary_zint ~bits:600 ()))
    (fun (a, b, c) ->
      Z.equal (Z.mul a (Z.add b c)) (Z.add (Z.mul a b) (Z.mul a c)))

let prop_divmod_invariant =
  QCheck.Test.make ~count:500 ~name:"a = q*b + r, |r| < |b|"
    (QCheck.pair (arbitrary_zint ~bits:600 ()) (arbitrary_zint ~bits:300 ()))
    (fun (a, b) ->
      QCheck.assume (not (Z.is_zero b));
      let q, r = Z.divmod a b in
      Z.equal a (Z.add (Z.mul q b) r)
      && Z.compare (Z.abs r) (Z.abs b) < 0
      && (Z.is_zero r || Z.sign r = Z.sign a))

let prop_ediv_invariant =
  QCheck.Test.make ~count:500 ~name:"euclidean: a = q*b + r, 0 <= r < |b|"
    (QCheck.pair (arbitrary_zint ~bits:600 ()) (arbitrary_zint ~bits:300 ()))
    (fun (a, b) ->
      QCheck.assume (not (Z.is_zero b));
      let q, r = Z.ediv_rem a b in
      Z.equal a (Z.add (Z.mul q b) r)
      && Z.sign r >= 0
      && Z.compare r (Z.abs b) < 0)

let prop_string_roundtrip =
  QCheck.Test.make ~count:300 ~name:"of_string . to_string = id"
    (arbitrary_zint ~bits:800 ())
    (fun a -> Z.equal a (Z.of_string (Z.to_string a)))

let prop_shift_mul_pow2 =
  QCheck.Test.make ~count:300 ~name:"shift_left = mul by 2^s"
    (QCheck.pair (arbitrary_zint ()) QCheck.(int_range 0 200))
    (fun (a, s) -> Z.equal (Z.shift_left a s) (Z.mul a (Z.pow Z.two s)))

let prop_shift_right_div_pow2 =
  QCheck.Test.make ~count:300 ~name:"shift_right = |a| / 2^s on magnitude"
    (QCheck.pair (arbitrary_pos_zint ()) QCheck.(int_range 0 200))
    (fun (a, s) -> Z.equal (Z.shift_right a s) (Z.div a (Z.pow Z.two s)))

let prop_gcd_divides =
  QCheck.Test.make ~count:200 ~name:"gcd divides both"
    (QCheck.pair (arbitrary_pos_zint ~bits:200 ()) (arbitrary_pos_zint ~bits:200 ()))
    (fun (a, b) ->
      let g = Z.gcd a b in
      Z.is_zero (Z.rem a g) && Z.is_zero (Z.rem b g))

let prop_egcd_bezout =
  QCheck.Test.make ~count:200 ~name:"egcd bezout identity"
    (QCheck.pair (arbitrary_zint ~bits:200 ()) (arbitrary_zint ~bits:200 ()))
    (fun (a, b) ->
      QCheck.assume (not (Z.is_zero a) || not (Z.is_zero b));
      let g, u, v = Z.egcd a b in
      Z.equal g (Z.add (Z.mul u a) (Z.mul v b)) && Z.sign g > 0)

let prop_powmod_montgomery_vs_generic =
  (* Odd multi-limb moduli take the Montgomery path; cross-check it
     against the naive square-and-multiply on small exponents and
     against Fermat on prime moduli. *)
  QCheck.Test.make ~count:100 ~name:"montgomery powmod vs naive"
    (QCheck.triple (arbitrary_pos_zint ~bits:300 ()) QCheck.(int_range 0 30)
       (arbitrary_pos_zint ~bits:300 ()))
    (fun (b, e, m_seed) ->
      let m = Z.succ (Z.mul_int m_seed 2) in (* force odd, >= 3 *)
      QCheck.assume (Z.numbits m > 31);
      Z.equal (Z.erem (Z.pow b e) m) (Z.powmod b (Z.of_int e) m))

let prop_powmod_even_modulus =
  QCheck.Test.make ~count:100 ~name:"generic powmod on even moduli"
    (QCheck.triple (arbitrary_pos_zint ~bits:200 ()) QCheck.(int_range 0 30)
       (arbitrary_pos_zint ~bits:200 ()))
    (fun (b, e, m_seed) ->
      let m = Z.mul_int (Z.succ m_seed) 2 in (* force even *)
      Z.equal (Z.erem (Z.pow b e) m) (Z.powmod b (Z.of_int e) m))

let prop_powmod_matches_naive =
  QCheck.Test.make ~count:100 ~name:"powmod vs repeated multiplication"
    (QCheck.triple (arbitrary_pos_zint ~bits:60 ()) QCheck.(int_range 0 40)
       (arbitrary_pos_zint ~bits:60 ()))
    (fun (b, e, m) ->
      let naive = Z.erem (Z.pow b e) m in
      Z.equal naive (Z.powmod b (Z.of_int e) m))

let prop_modinv =
  QCheck.Test.make ~count:150 ~name:"modinv correct when gcd = 1"
    (QCheck.pair (arbitrary_pos_zint ~bits:150 ()) (arbitrary_pos_zint ~bits:150 ()))
    (fun (a, m) ->
      QCheck.assume (Z.compare m Z.two > 0);
      QCheck.assume (Z.is_one (Z.gcd a m));
      let inv = Z.modinv a m in
      Z.is_one (Z.erem (Z.mul a inv) m) && Z.sign inv >= 0 && Z.compare inv m < 0)

let prop_numbits_bound =
  QCheck.Test.make ~count:300 ~name:"2^(numbits-1) <= |a| < 2^numbits"
    (arbitrary_pos_zint ())
    (fun a ->
      let n = Z.numbits a in
      Z.compare (Z.pow Z.two (n - 1)) a <= 0 && Z.compare a (Z.pow Z.two n) < 0)

let prop_compare_total_order =
  QCheck.Test.make ~count:300 ~name:"compare consistent with sub sign"
    (QCheck.pair (arbitrary_zint ()) (arbitrary_zint ()))
    (fun (a, b) -> Stdlib.compare (Z.compare a b) 0 = Stdlib.compare (Z.sign (Z.sub a b)) 0)

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_add_commutative; prop_add_associative; prop_sub_inverse;
    prop_mul_commutative; prop_mul_distributes; prop_divmod_invariant;
    prop_ediv_invariant; prop_string_roundtrip; prop_shift_mul_pow2;
    prop_shift_right_div_pow2; prop_gcd_divides; prop_egcd_bezout;
    prop_powmod_matches_naive; prop_powmod_montgomery_vs_generic;
    prop_powmod_even_modulus; prop_modinv; prop_numbits_bound;
    prop_compare_total_order ]

let () =
  Alcotest.run "zint"
    [ ("constants", [ Alcotest.test_case "constants" `Quick test_constants ]);
      ("conversions",
       [ Alcotest.test_case "int roundtrip" `Quick test_of_to_int;
         Alcotest.test_case "int64" `Quick test_of_int64;
         Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
         Alcotest.test_case "string invalid" `Quick test_string_invalid;
         Alcotest.test_case "to_float" `Quick test_to_float ]);
      ("arithmetic",
       [ Alcotest.test_case "add/sub" `Quick test_add_sub_basic;
         Alcotest.test_case "mul" `Quick test_mul_basic;
         Alcotest.test_case "karatsuba" `Quick test_karatsuba_consistency;
         Alcotest.test_case "divmod" `Quick test_divmod_basic;
         Alcotest.test_case "knuth addback" `Quick test_divmod_knuth_addback;
         Alcotest.test_case "pow" `Quick test_pow;
         Alcotest.test_case "shifts" `Quick test_shifts;
         Alcotest.test_case "numbits/testbit" `Quick test_numbits_testbit ]);
      ("number theory",
       [ Alcotest.test_case "gcd/egcd" `Quick test_gcd_egcd;
         Alcotest.test_case "modinv" `Quick test_modinv;
         Alcotest.test_case "powmod" `Quick test_powmod;
         Alcotest.test_case "lcm" `Quick test_lcm ]);
      ("primality",
       [ Alcotest.test_case "known primes/composites" `Quick test_primality_known;
         Alcotest.test_case "random_prime" `Slow test_random_prime;
         Alcotest.test_case "next_prime" `Quick test_next_prime;
         Alcotest.test_case "random_below" `Quick test_random_below_range ]);
      ("properties", qsuite) ]
