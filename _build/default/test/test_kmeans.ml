(* Tests for the k-means extension (the paper's §7 future work):
   plaintext Lloyd reference and the secure two-party version. *)

module Rng = Util.Rng

let clustered ?(n = 90) ?(d = 2) ?(clusters = 3) seed =
  Synthetic.clustered (Rng.of_int seed) ~n ~d ~clusters ~spread:6.0 ~max_value:250

(* ------------------------------------------------------------------ *)
(* Plaintext Lloyd                                                     *)
(* ------------------------------------------------------------------ *)

let test_assign_basic () =
  let centroids = [| [| 0; 0 |]; [| 100; 100 |] |] in
  let db = [| [| 1; 2 |]; [| 99; 98 |]; [| 49; 49 |]; [| 51; 51 |] |] in
  Alcotest.(check (array int)) "assignment" [| 0; 1; 0; 1 |]
    (Kmeans_plain.assign ~centroids db)

let test_assign_tie_lowest_index () =
  let centroids = [| [| 0; 0 |]; [| 10; 0 |] |] in
  Alcotest.(check (array int)) "tie to lowest" [| 0 |]
    (Kmeans_plain.assign ~centroids [| [| 5; 0 |] |])

let test_update_means () =
  let db = [| [| 0; 0 |]; [| 2; 4 |]; [| 100; 100 |] |] in
  let upd = Kmeans_plain.update ~k:3 ~d:2 ~assignments:[| 0; 0; 1 |] db in
  Alcotest.(check (option (array int))) "cluster 0 mean" (Some [| 1; 2 |]) upd.(0);
  Alcotest.(check (option (array int))) "cluster 1 mean" (Some [| 100; 100 |]) upd.(1);
  Alcotest.(check (option (array int))) "empty cluster" None upd.(2)

let test_update_rounding () =
  (* Mean of 0 and 3 is 1.5, rounds half-up to 2. *)
  let upd = Kmeans_plain.update ~k:1 ~d:1 ~assignments:[| 0; 0 |] [| [| 0 |]; [| 3 |] |] in
  Alcotest.(check (option (array int))) "round half up" (Some [| 2 |]) upd.(0)

let test_lloyd_separated_clusters () =
  let db = clustered 5 in
  let init = [| db.(0); db.(1); db.(2) |] in
  let r = Kmeans_plain.lloyd ~init db in
  Alcotest.(check bool) "converged" true r.Kmeans_plain.converged;
  Alcotest.(check int) "all points assigned" 90
    (Array.fold_left ( + ) 0 r.Kmeans_plain.sizes);
  (* The objective never beats assigning every point to its own
     generator centre, but must be far below the one-cluster answer. *)
  let one = Kmeans_plain.lloyd ~init:[| db.(0) |] db in
  Alcotest.(check bool) "3 clusters beat 1" true
    (r.Kmeans_plain.objective < one.Kmeans_plain.objective)

let test_lloyd_objective_decreases () =
  let db = clustered 7 in
  let init = [| db.(3); db.(4); db.(5) |] in
  let start_assign = Kmeans_plain.assign ~centroids:init db in
  let start_obj = Kmeans_plain.objective ~centroids:init ~assignments:start_assign db in
  let r = Kmeans_plain.lloyd ~init db in
  Alcotest.(check bool) "objective improved or equal" true
    (r.Kmeans_plain.objective <= start_obj)

let test_lloyd_k1_is_mean () =
  let db = [| [| 0; 0 |]; [| 10; 20 |]; [| 20; 10 |] |] in
  let r = Kmeans_plain.lloyd ~init:[| [| 5; 5 |] |] db in
  Alcotest.(check (array int)) "global mean" [| 10; 10 |] r.Kmeans_plain.centroids.(0)

let test_lloyd_validation () =
  Alcotest.check_raises "empty db" (Invalid_argument "Kmeans_plain.lloyd: empty input")
    (fun () -> ignore (Kmeans_plain.lloyd ~init:[| [| 1 |] |] [||]));
  Alcotest.check_raises "k=0" (Invalid_argument "Kmeans_plain.lloyd: k = 0")
    (fun () -> ignore (Kmeans_plain.lloyd ~init:[||] [| [| 1 |] |]))

(* ------------------------------------------------------------------ *)
(* Secure k-means                                                      *)
(* ------------------------------------------------------------------ *)

let test_secure_matches_plaintext () =
  List.iter
    (fun seed ->
      let db = clustered seed in
      let init = [| db.(0); db.(30); db.(60) |] in
      let dep = Kmeans.deploy ~rng:(Rng.of_int seed) (Config.fast ()) ~db in
      let r = Kmeans.run ~rng:(Rng.of_int (seed * 7)) dep ~init in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d matches Lloyd" seed)
        true
        (Kmeans.matches_plaintext ~db ~init r))
    [ 11; 13; 17 ]

let test_secure_sizes_and_convergence () =
  let db = clustered 19 in
  let init = [| db.(0); db.(30); db.(60) |] in
  let dep = Kmeans.deploy ~rng:(Rng.of_int 19) (Config.fast ()) ~db in
  let r = Kmeans.run ~rng:(Rng.of_int 20) dep ~init in
  Alcotest.(check bool) "converged" true r.Kmeans.converged;
  Alcotest.(check int) "sizes partition n" 90 (Array.fold_left ( + ) 0 r.Kmeans.sizes);
  let plain = Kmeans_plain.lloyd ~init db in
  Alcotest.(check (array int)) "same sizes"
    (let s = Array.copy plain.Kmeans_plain.sizes in Array.sort compare s; s)
    (let s = Array.copy r.Kmeans.sizes in Array.sort compare s; s)

let test_secure_k1 () =
  let db = clustered ~clusters:1 23 in
  let dep = Kmeans.deploy ~rng:(Rng.of_int 23) (Config.fast ()) ~db in
  let r = Kmeans.run dep ~init:[| db.(0) |] in
  let plain = Kmeans_plain.lloyd ~init:[| db.(0) |] db in
  Alcotest.(check bool) "k=1 equals global mean" true
    (plain.Kmeans_plain.centroids = r.Kmeans.centroids)

let test_secure_max_iters_bound () =
  let db = clustered 29 in
  let dep = Kmeans.deploy ~rng:(Rng.of_int 29) (Config.fast ()) ~db in
  let r = Kmeans.run ~max_iters:1 dep ~init:[| db.(0); db.(1); db.(2) |] in
  Alcotest.(check int) "stopped at bound" 1 r.Kmeans.iterations

let test_secure_layout_restriction () =
  let db = clustered 31 in
  Alcotest.check_raises "per-coordinate refused"
    (Invalid_argument "Kmeans.deploy: requires the Dot_product layout")
    (fun () -> ignore (Kmeans.deploy (Config.standard ()) ~db))

let test_secure_communication_pattern () =
  let db = clustered ~n:30 37 in
  let dep = Kmeans.deploy ~rng:(Rng.of_int 37) (Config.fast ()) ~db in
  let r = Kmeans.run ~rng:(Rng.of_int 38) dep ~init:[| db.(0); db.(15) |] in
  (* 4 messages per iteration: centroids, rows, indicators, aggregates. *)
  Alcotest.(check int) "messages per iteration" (4 * r.Kmeans.iterations)
    (Transcript.messages r.Kmeans.transcript);
  Alcotest.(check bool) "B decrypts n*k per iteration" true
    (Util.Counters.decryptions r.Kmeans.counters_b >= 30 * 2 * r.Kmeans.iterations)

let () =
  Alcotest.run "kmeans"
    [ ("plain lloyd",
       [ Alcotest.test_case "assign" `Quick test_assign_basic;
         Alcotest.test_case "assign ties" `Quick test_assign_tie_lowest_index;
         Alcotest.test_case "update means" `Quick test_update_means;
         Alcotest.test_case "update rounding" `Quick test_update_rounding;
         Alcotest.test_case "separated clusters" `Quick test_lloyd_separated_clusters;
         Alcotest.test_case "objective decreases" `Quick test_lloyd_objective_decreases;
         Alcotest.test_case "k=1 is mean" `Quick test_lloyd_k1_is_mean;
         Alcotest.test_case "validation" `Quick test_lloyd_validation ]);
      ("secure",
       [ Alcotest.test_case "matches plaintext" `Slow test_secure_matches_plaintext;
         Alcotest.test_case "sizes + convergence" `Quick test_secure_sizes_and_convergence;
         Alcotest.test_case "k = 1" `Quick test_secure_k1;
         Alcotest.test_case "max_iters" `Quick test_secure_max_iters_bound;
         Alcotest.test_case "layout restriction" `Quick test_secure_layout_restriction;
         Alcotest.test_case "communication pattern" `Quick test_secure_communication_pattern ]) ]
