(* Tests for the Paillier cryptosystem. *)

module Z = Zint
module Rng = Util.Rng

let rng () = Rng.of_int 71

let keys = lazy (Paillier.keygen ~modulus_bits:256 (rng ()))

let sk () = fst (Lazy.force keys)
let pk () = snd (Lazy.force keys)

let test_keygen_shape () =
  let pk = pk () in
  Alcotest.(check int) "modulus bits" 256 (Paillier.modulus_bits pk);
  Alcotest.(check bool) "modulus size" true
    (Z.numbits (Paillier.modulus pk) >= 255 && Z.numbits (Paillier.modulus pk) <= 256);
  Alcotest.(check int) "ct bytes" 64 (Paillier.byte_size pk);
  Alcotest.(check bool) "public_of_secret" true
    (Z.equal (Paillier.modulus (Paillier.public_of_secret (sk ()))) (Paillier.modulus pk))

let test_roundtrip () =
  let r = rng () in
  List.iter
    (fun m ->
      let c = Paillier.encrypt_int r (pk ()) m in
      Alcotest.(check int) (string_of_int m) m (Paillier.decrypt_int (sk ()) c))
    [ 0; 1; 42; 1 lsl 30; 123456789 ]

let test_roundtrip_large () =
  let r = rng () in
  let pk = pk () in
  for _ = 1 to 20 do
    let m = Z.random_below r (Paillier.modulus pk) in
    let c = Paillier.encrypt r pk m in
    Alcotest.(check string) "large roundtrip" (Z.to_string m)
      (Z.to_string (Paillier.decrypt (sk ()) c))
  done

let test_range_check () =
  let r = rng () in
  let pk = pk () in
  Alcotest.check_raises "negative" (Invalid_argument "Paillier.encrypt: message out of range")
    (fun () -> ignore (Paillier.encrypt r pk (Z.of_int (-1))));
  Alcotest.check_raises "too large" (Invalid_argument "Paillier.encrypt: message out of range")
    (fun () -> ignore (Paillier.encrypt r pk (Paillier.modulus pk)))

let test_homomorphic_add () =
  let r = rng () in
  let pk = pk () in
  let c1 = Paillier.encrypt_int r pk 1234 and c2 = Paillier.encrypt_int r pk 8765 in
  Alcotest.(check int) "add" 9999 (Paillier.decrypt_int (sk ()) (Paillier.add pk c1 c2));
  Alcotest.(check int) "sub" 7531 (Paillier.decrypt_int (sk ()) (Paillier.sub pk c2 c1));
  Alcotest.(check int) "add_plain" 1244
    (Paillier.decrypt_int (sk ()) (Paillier.add_plain pk c1 (Z.of_int 10)));
  Alcotest.(check int) "mul_plain" 3702
    (Paillier.decrypt_int (sk ()) (Paillier.mul_plain pk c1 (Z.of_int 3)))

let test_sub_wraps_mod_n () =
  let r = rng () in
  let pk = pk () in
  let c1 = Paillier.encrypt_int r pk 5 and c2 = Paillier.encrypt_int r pk 7 in
  let diff = Paillier.decrypt (sk ()) (Paillier.sub pk c1 c2) in
  Alcotest.(check string) "5-7 = n-2" (Z.to_string (Z.sub (Paillier.modulus pk) Z.two))
    (Z.to_string diff)

let test_rerandomize () =
  let r = rng () in
  let pk = pk () in
  let c = Paillier.encrypt_int r pk 77 in
  let c' = Paillier.rerandomize r pk c in
  Alcotest.(check bool) "different ciphertext" false (Z.equal c c');
  Alcotest.(check int) "same plaintext" 77 (Paillier.decrypt_int (sk ()) c')

let test_probabilistic () =
  let r = rng () in
  let pk = pk () in
  let c1 = Paillier.encrypt_int r pk 5 and c2 = Paillier.encrypt_int r pk 5 in
  Alcotest.(check bool) "fresh randomness" false (Z.equal c1 c2)

let test_counters () =
  let c = Util.Counters.create () in
  let r = rng () in
  let pk = pk () in
  let ct = Paillier.encrypt_int ~counters:c r pk 1 in
  ignore (Paillier.add ~counters:c pk ct ct);
  ignore (Paillier.mul_plain ~counters:c pk ct (Z.of_int 5));
  ignore (Paillier.decrypt ~counters:c (sk ()) ct);
  Alcotest.(check int) "enc" 1 (Util.Counters.encryptions c);
  Alcotest.(check int) "dec" 1 (Util.Counters.decryptions c);
  Alcotest.(check int) "hom add" 1 (Util.Counters.hom_adds c);
  Alcotest.(check int) "mul plain" 1 (Util.Counters.hom_mul_plains c)

let test_small_keys_still_work () =
  (* The bench presets use small moduli; make sure a 128-bit key is
     functional end to end. *)
  let r = Rng.of_int 73 in
  let sk, pk = Paillier.keygen ~modulus_bits:128 r in
  let c = Paillier.encrypt_int r pk 31337 in
  Alcotest.(check int) "roundtrip" 31337 (Paillier.decrypt_int sk c)

let prop_add_homomorphic =
  QCheck.Test.make ~count:30 ~name:"Dec(E(a)·E(b)) = a+b mod n"
    QCheck.(pair (int_range 0 1000000) (int_range 0 1000000))
    (fun (a, b) ->
      let r = rng () in
      let ca = Paillier.encrypt_int r (pk ()) a and cb = Paillier.encrypt_int r (pk ()) b in
      Paillier.decrypt_int (sk ()) (Paillier.add (pk ()) ca cb) = a + b)

let prop_scalar =
  QCheck.Test.make ~count:30 ~name:"Dec(E(a)^k) = k·a mod n"
    QCheck.(pair (int_range 0 100000) (int_range 0 1000))
    (fun (a, k) ->
      let r = rng () in
      let ca = Paillier.encrypt_int r (pk ()) a in
      Paillier.decrypt_int (sk ()) (Paillier.mul_plain (pk ()) ca (Z.of_int k)) = a * k)

let () =
  Alcotest.run "paillier"
    [ ("keys",
       [ Alcotest.test_case "keygen shape" `Quick test_keygen_shape;
         Alcotest.test_case "small keys" `Quick test_small_keys_still_work ]);
      ("encryption",
       [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
         Alcotest.test_case "roundtrip large" `Quick test_roundtrip_large;
         Alcotest.test_case "range check" `Quick test_range_check;
         Alcotest.test_case "probabilistic" `Quick test_probabilistic;
         Alcotest.test_case "rerandomize" `Quick test_rerandomize ]);
      ("homomorphic",
       [ Alcotest.test_case "add/sub/scalar" `Quick test_homomorphic_add;
         Alcotest.test_case "sub wraps" `Quick test_sub_wraps_mod_n;
         Alcotest.test_case "counters" `Quick test_counters ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest [ prop_add_homomorphic; prop_scalar ]) ]
