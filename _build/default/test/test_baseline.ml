(* Tests for the Yousef et al. baseline: the SMC toolbox and the full
   SkNN_m protocol. *)

module Z = Zint
module Rng = Util.Rng

let shared = lazy (
  let rng = Rng.of_int 81 in
  let sk, pk = Paillier.keygen ~modulus_bits:160 rng in
  Smc.create ~rng ~sk ~pk ~l:12 ())

let ctx () = Lazy.force shared

let enc v = Smc.encrypt_value (ctx ()) v
let dec c = Smc.decrypt_value (ctx ()) c

let test_create_validation () =
  let rng = Rng.of_int 82 in
  let sk, pk = Paillier.keygen ~modulus_bits:32 rng in
  Alcotest.check_raises "l too large for modulus"
    (Invalid_argument "Smc.create: 2^(l+2) must stay below the Paillier modulus")
    (fun () -> ignore (Smc.create ~rng ~sk ~pk ~l:31 ()))

let test_sm () =
  List.iter
    (fun (a, b) ->
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b)
        (dec (Smc.sm (ctx ()) (enc a) (enc b))))
    [ (0, 0); (0, 5); (1, 1); (57, 43); (4095, 4095); (1, 4000) ]

let test_sm_negative_residues () =
  (* SM must be correct on mod-n "negative" values, as produced by
     subtraction: (-x)·(-x) = x². *)
  let c = ctx () in
  let diff = Paillier.sub (Smc.pk c) (enc 3) (enc 10) in
  Alcotest.(check int) "(-7)^2" 49 (dec (Smc.sm c diff diff))

let test_ssed () =
  let c = ctx () in
  let p = Array.map enc [| 3; 7; 2 |] and q = Array.map enc [| 1; 10; 2 |] in
  Alcotest.(check int) "distance" 13 (dec (Smc.ssed c p q));
  Alcotest.(check int) "zero distance" 0 (dec (Smc.ssed c p p))

let test_sbd () =
  let c = ctx () in
  List.iter
    (fun v ->
      let bits = (Smc.sbd c [| enc v |]).(0) in
      Alcotest.(check int) "bit count" 12 (Array.length bits);
      let reassembled = ref 0 in
      Array.iteri (fun i b -> reassembled := !reassembled + (dec b lsl i)) bits;
      Alcotest.(check int) (Printf.sprintf "sbd %d" v) v !reassembled;
      Alcotest.(check int) "bits_to_value" v (dec (Smc.bits_to_value c bits)))
    [ 0; 1; 2; 1337; 4095 ]

let test_sbd_batch () =
  let c = ctx () in
  let values = [| 5; 0; 4095; 100 |] in
  let all = Smc.sbd c (Array.map enc values) in
  Array.iteri
    (fun i bits ->
      Alcotest.(check int) "batched" values.(i) (dec (Smc.bits_to_value c bits)))
    all

let test_smin () =
  let c = ctx () in
  let bd v = (Smc.sbd c [| enc v |]).(0) in
  List.iter
    (fun (u, v) ->
      let m = Smc.smin c (bd u) (bd v) in
      Alcotest.(check int) (Printf.sprintf "min(%d,%d)" u v) (min u v)
        (dec (Smc.bits_to_value c m)))
    [ (5, 9); (9, 5); (7, 7); (0, 100); (4095, 4094); (1, 0); (2048, 2047) ]

let test_smin_n () =
  let c = ctx () in
  let bd v = (Smc.sbd c [| enc v |]).(0) in
  List.iter
    (fun values ->
      let m = Smc.smin_n c (Array.map bd (Array.of_list values)) in
      Alcotest.(check int) "tournament min" (List.fold_left min max_int values)
        (dec (Smc.bits_to_value c m)))
    [ [ 42 ]; [ 42; 17 ]; [ 42; 17; 99; 3; 64; 3; 1000 ]; [ 9; 9; 9 ]; [ 0; 4095 ] ]

let test_transcript_grows () =
  let c = ctx () in
  let tr = Smc.transcript c in
  let before = Transcript.messages tr in
  ignore (Smc.sm c (enc 2) (enc 3));
  Alcotest.(check int) "SM = 2 messages" (before + 2) (Transcript.messages tr)

(* Full protocol *)

let deploy_small () =
  let rng = Rng.of_int 91 in
  let db = Synthetic.uniform rng ~n:12 ~d:2 ~max_value:15 in
  (db, Sknn_m.deploy ~rng ~modulus_bits:128 ~db (), rng)

let test_sknn_m_exact () =
  let db, dep, rng = deploy_small () in
  let q = Synthetic.query_like rng db in
  List.iter
    (fun k ->
      let r = Sknn_m.query dep ~query:q ~k in
      Alcotest.(check int) "count" k (Array.length r.Sknn_m.neighbours);
      Alcotest.(check bool) (Printf.sprintf "exact k=%d" k) true
        (Sknn_m.exact dep ~db ~query:q r))
    [ 1; 2; 3 ]

let test_sknn_m_interactions_grow_with_k () =
  let db, dep, rng = deploy_small () in
  let q = Synthetic.query_like rng db in
  let r1 = Sknn_m.query dep ~query:q ~k:1 in
  let r3 = Sknn_m.query dep ~query:q ~k:3 in
  Alcotest.(check bool) "O(k) interaction growth" true
    (r3.Sknn_m.interactions > r1.Sknn_m.interactions);
  Alcotest.(check bool) "far more than one round" true (r1.Sknn_m.interactions > 10)

let test_sknn_m_counter_shape () =
  let db, dep, rng = deploy_small () in
  let q = Synthetic.query_like rng db in
  let r = Sknn_m.query dep ~query:q ~k:2 in
  let n = Array.length db and l = Sknn_m.bit_length dep in
  (* C2 decrypts at least the SBD masks: n·l per decomposition pass. *)
  Alcotest.(check bool) "C2 decryptions >= n·l" true
    (Util.Counters.decryptions r.Sknn_m.counters_c2 >= n * l);
  Alcotest.(check bool) "C2 encrypts indicators" true
    (Util.Counters.encryptions r.Sknn_m.counters_c2 >= n * r.Sknn_m.k);
  Alcotest.(check bool) "bytes on the wire" true
    (Transcript.bytes_between r.Sknn_m.transcript Transcript.Party_a Transcript.Party_b > 0)

let test_sknn_m_ties () =
  let rng = Rng.of_int 97 in
  let db = [| [| 2; 2 |]; [| 0; 0 |]; [| 4; 0 |]; [| 0; 4 |]; [| 4; 4 |] |] in
  let dep = Sknn_m.deploy ~rng ~modulus_bits:128 ~db () in
  let q = [| 2; 2 |] in
  List.iter
    (fun k ->
      let r = Sknn_m.query dep ~query:q ~k in
      Alcotest.(check bool) (Printf.sprintf "ties k=%d" k) true
        (Sknn_m.exact dep ~db ~query:q r))
    [ 1; 2; 3; 5 ]

let test_sknn_m_validation () =
  let _db, dep, _ = deploy_small () in
  Alcotest.check_raises "k out of range" (Invalid_argument "Sknn_m.query: k out of range")
    (fun () -> ignore (Sknn_m.query dep ~query:[| 1; 2 |] ~k:0));
  Alcotest.check_raises "dimension" (Invalid_argument "Sknn_m.query: dimension mismatch")
    (fun () -> ignore (Sknn_m.query dep ~query:[| 1 |] ~k:1));
  Alcotest.check_raises "negative data"
    (Invalid_argument "Sknn_m.deploy: negative coordinate")
    (fun () -> ignore (Sknn_m.deploy ~db:[| [| -1 |] |] ()))

let test_agreement_with_main_protocol () =
  (* Both secure protocols and the plaintext oracle agree on the same
     instance. *)
  let rng = Rng.of_int 101 in
  let db = Synthetic.uniform rng ~n:10 ~d:2 ~max_value:12 in
  let q = Synthetic.query_like rng db in
  let k = 3 in
  let dep_b = Sknn_m.deploy ~rng ~modulus_bits:128 ~db () in
  let rb = Sknn_m.query dep_b ~query:q ~k in
  let dep_o = Protocol.deploy ~rng (Config.fast ()) ~db in
  let ro = Protocol.query dep_o ~query:q ~k in
  let dists ps =
    let a = Array.map (fun p -> Distance.squared_euclidean q p) ps in
    Array.sort compare a; a
  in
  Alcotest.(check (array int)) "same distance multiset"
    (dists rb.Sknn_m.neighbours) (dists ro.Protocol.neighbours);
  Alcotest.(check (array int)) "matches plaintext oracle"
    (Plain_knn.kth_smallest_distances ~k ~query:q db) (dists rb.Sknn_m.neighbours)

(* ------------------------------------------------------------------ *)
(* ASPE comparator and its break                                       *)
(* ------------------------------------------------------------------ *)

let test_aspe_knn_exact () =
  let rng = Rng.of_int 301 in
  let d = 4 in
  let key = Aspe.keygen rng ~d in
  Alcotest.(check int) "dimension" d (Aspe.dimension key);
  let db = Synthetic.uniform rng ~n:60 ~d ~max_value:200 in
  let enc = Array.map (Aspe.encrypt_point key) db in
  for _ = 1 to 10 do
    let q = Synthetic.query_like rng db in
    let eq = Aspe.encrypt_query rng key q in
    let got = Aspe.knn ~db:enc ~query:eq ~k:5 in
    Alcotest.(check bool) "exact" true (Plain_knn.same_answer ~k:5 ~query:q db got)
  done

let test_aspe_score_order () =
  let rng = Rng.of_int 307 in
  let key = Aspe.keygen rng ~d:2 in
  let near = [| 10; 10 |] and far = [| 200; 200 |] in
  let q = Aspe.encrypt_query rng key [| 12; 11 |] in
  Alcotest.(check bool) "closer point scores higher" true
    (Aspe.score (Aspe.encrypt_point key near) q
     > Aspe.score (Aspe.encrypt_point key far) q)

let test_aspe_known_plaintext_attack () =
  (* The reason the paper rejects ASPE: d+1 leaked pairs decrypt the
     whole database. *)
  let rng = Rng.of_int 311 in
  let d = 5 in
  let key = Aspe.keygen rng ~d in
  let db = Synthetic.uniform rng ~n:40 ~d ~max_value:150 in
  let enc = Array.map (Aspe.encrypt_point key) db in
  let pairs = Array.init (d + 1) (fun i -> (db.(i * 3), enc.(i * 3))) in
  let decrypt = Aspe.known_plaintext_attack ~pairs in
  Array.iteri
    (fun i ct ->
      Alcotest.(check (array int)) (Printf.sprintf "point %d recovered" i) db.(i)
        (decrypt ct))
    enc

let test_aspe_attack_needs_enough_pairs () =
  let rng = Rng.of_int 313 in
  let d = 3 in
  let key = Aspe.keygen rng ~d in
  let db = Synthetic.uniform rng ~n:5 ~d ~max_value:50 in
  let enc = Array.map (Aspe.encrypt_point key) db in
  let pairs = Array.init d (fun i -> (db.(i), enc.(i))) in
  Alcotest.(check bool) "too few pairs rejected" true
    (try
       let (_ : Aspe.enc_point -> int array) = Aspe.known_plaintext_attack ~pairs in
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "baseline"
    [ ("smc",
       [ Alcotest.test_case "create validation" `Quick test_create_validation;
         Alcotest.test_case "secure multiplication" `Quick test_sm;
         Alcotest.test_case "SM on negatives" `Quick test_sm_negative_residues;
         Alcotest.test_case "SSED" `Quick test_ssed;
         Alcotest.test_case "SBD" `Quick test_sbd;
         Alcotest.test_case "SBD batch" `Quick test_sbd_batch;
         Alcotest.test_case "SMIN" `Quick test_smin;
         Alcotest.test_case "SMIN_n" `Quick test_smin_n;
         Alcotest.test_case "transcript" `Quick test_transcript_grows ]);
      ("aspe",
       [ Alcotest.test_case "knn exact" `Quick test_aspe_knn_exact;
         Alcotest.test_case "score order" `Quick test_aspe_score_order;
         Alcotest.test_case "known-plaintext break" `Quick test_aspe_known_plaintext_attack;
         Alcotest.test_case "attack needs d+1 pairs" `Quick test_aspe_attack_needs_enough_pairs ]);
      ("sknn_m",
       [ Alcotest.test_case "exact" `Slow test_sknn_m_exact;
         Alcotest.test_case "O(k) interactions" `Slow test_sknn_m_interactions_grow_with_k;
         Alcotest.test_case "counter shape" `Slow test_sknn_m_counter_shape;
         Alcotest.test_case "ties" `Slow test_sknn_m_ties;
         Alcotest.test_case "validation" `Quick test_sknn_m_validation;
         Alcotest.test_case "agreement with main protocol" `Slow
           test_agreement_with_main_protocol ]) ]
