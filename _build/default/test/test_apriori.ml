(* Tests for the Apriori extension: plaintext reference and the secure
   slot-packed protocol. *)

module Rng = Util.Rng

let tiny =
  (* Classic textbook transactions over items {0..4}. *)
  [| [| 1; 1; 0; 0; 1 |];
     [| 0; 1; 0; 1; 0 |];
     [| 0; 1; 1; 0; 0 |];
     [| 1; 1; 0; 1; 0 |];
     [| 1; 0; 1; 0; 0 |];
     [| 0; 1; 1; 0; 0 |];
     [| 1; 0; 1; 0; 0 |];
     [| 1; 1; 1; 0; 1 |];
     [| 1; 1; 1; 0; 0 |] |]

let planted seed ~n ~m ~p_noise ~p_pattern =
  let rng = Rng.of_int seed in
  Array.init n (fun _ ->
      let row = Array.init m (fun _ -> if Rng.float rng < p_noise then 1 else 0) in
      if Rng.float rng < p_pattern then begin
        row.(0) <- 1;
        row.(1) <- 1;
        row.(2) <- 1
      end;
      row)

(* ------------------------------------------------------------------ *)
(* Plaintext                                                           *)
(* ------------------------------------------------------------------ *)

let test_support () =
  Alcotest.(check int) "single item" 6 (Apriori_plain.support [ 0 ] tiny);
  Alcotest.(check int) "pair" 4 (Apriori_plain.support [ 0; 1 ] tiny);
  Alcotest.(check int) "triple" 2 (Apriori_plain.support [ 0; 1; 2 ] tiny);
  Alcotest.(check int) "empty set is universal" 9 (Apriori_plain.support [] tiny)

let test_singletons () =
  Alcotest.(check (list (list int))) "items" [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ]
    (Apriori_plain.singletons tiny)

let test_candidates_join () =
  Alcotest.(check (list (list int))) "join pairs"
    [ [ 0; 1; 2 ] ]
    (Apriori_plain.candidates [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ] ]);
  (* {0,3} missing => {0,1,3} pruned. *)
  Alcotest.(check (list (list int))) "prune"
    []
    (Apriori_plain.candidates [ [ 0; 1 ]; [ 1; 3 ] ])

let test_frequent_itemsets_exact () =
  let got = Apriori_plain.frequent_itemsets ~minsup:4 tiny in
  (* Brute-force oracle over all itemsets up to size 4. *)
  let m = 5 in
  let rec subsets start acc =
    if List.length acc = 4 then [ List.rev acc ]
    else begin
      let here = if acc = [] then [] else [ List.rev acc ] in
      here
      @ List.concat_map
          (fun j -> subsets (j + 1) (j :: acc))
          (List.init (m - start) (fun i -> start + i))
    end
  in
  let all = List.sort_uniq compare (subsets 0 []) in
  let expected =
    List.filter_map
      (fun s ->
        if s = [] then None
        else begin
          let sup = Apriori_plain.support s tiny in
          if sup >= 4 then Some (s, sup) else None
        end)
      all
    |> List.sort (fun (a, _) (b, _) ->
           compare (List.length a, a) (List.length b, b))
  in
  Alcotest.(check (list (pair (list int) int))) "matches brute force" expected got

let test_frequent_minsup_boundaries () =
  let all = Apriori_plain.frequent_itemsets ~minsup:1 tiny in
  Alcotest.(check bool) "minsup=1 finds plenty" true (List.length all > 10);
  Alcotest.(check (list (pair (list int) int))) "impossible minsup" []
    (Apriori_plain.frequent_itemsets ~minsup:10 tiny);
  Alcotest.check_raises "minsup=0" (Invalid_argument "Apriori_plain: minsup < 1")
    (fun () -> ignore (Apriori_plain.frequent_itemsets ~minsup:0 tiny));
  Alcotest.check_raises "non-binary" (Invalid_argument "Apriori_plain: transactions must be 0/1")
    (fun () -> ignore (Apriori_plain.frequent_itemsets ~minsup:1 [| [| 2 |] |]))

let test_max_size_cap () =
  let capped = Apriori_plain.frequent_itemsets ~max_size:1 ~minsup:2 tiny in
  Alcotest.(check bool) "only singletons" true
    (List.for_all (fun (s, _) -> List.length s = 1) capped)

(* ------------------------------------------------------------------ *)
(* Secure                                                              *)
(* ------------------------------------------------------------------ *)

let test_secure_matches_textbook () =
  let dep = Apriori.deploy ~rng:(Rng.of_int 41) (Config.standard ()) ~transactions:tiny in
  Alcotest.(check int) "items" 5 (Apriori.item_count dep);
  Alcotest.(check int) "transactions" 9 (Apriori.transaction_count dep);
  List.iter
    (fun minsup ->
      let r = Apriori.mine ~rng:(Rng.of_int (43 + minsup)) dep ~minsup in
      Alcotest.(check bool) (Printf.sprintf "minsup=%d" minsup) true
        (Apriori.matches_plaintext ~transactions:tiny ~minsup r))
    [ 2; 4; 6; 9 ]

let test_secure_planted_pattern () =
  let tx = planted 47 ~n:300 ~m:10 ~p_noise:0.1 ~p_pattern:0.5 in
  let minsup = 100 in
  let dep = Apriori.deploy ~rng:(Rng.of_int 47) (Config.standard ()) ~transactions:tx in
  let r = Apriori.mine ~rng:(Rng.of_int 48) dep ~minsup in
  Alcotest.(check bool) "matches plaintext" true
    (Apriori.matches_plaintext ~transactions:tx ~minsup r);
  Alcotest.(check bool) "planted triple found" true
    (List.mem [ 0; 1; 2 ] r.Apriori.frequent)

let test_secure_spans_blocks () =
  (* More transactions than ring slots, exercising block handling. *)
  let tx = planted 53 ~n:150 ~m:6 ~p_noise:0.2 ~p_pattern:0.6 in
  let minsup = 60 in
  let dep = Apriori.deploy ~rng:(Rng.of_int 53) (Config.standard ()) ~transactions:tx in
  let r = Apriori.mine ~rng:(Rng.of_int 54) dep ~minsup in
  Alcotest.(check bool) "matches across blocks" true
    (Apriori.matches_plaintext ~transactions:tx ~minsup r)

let test_secure_leakage_shape () =
  let tx = planted 59 ~n:100 ~m:8 ~p_noise:0.15 ~p_pattern:0.5 in
  let dep = Apriori.deploy ~rng:(Rng.of_int 59) (Config.standard ()) ~transactions:tx in
  let r = Apriori.mine ~rng:(Rng.of_int 60) dep ~minsup:40 in
  (* B's decryption count equals the ciphertexts sent, i.e. candidates x
     blocks — never n x candidates. *)
  let blocks = (100 + 63) / 64 in
  let expected = blocks * Array.fold_left ( + ) 0 r.Apriori.level_candidates in
  Alcotest.(check int) "B decryptions = candidates * blocks" expected
    (Util.Counters.decryptions r.Apriori.counters_b);
  Alcotest.(check bool) "A performed the multiplications" true
    (Util.Counters.hom_muls r.Apriori.counters_a > 0);
  Alcotest.(check bool) "per-level counts consistent" true
    (Array.for_all2 ( >= ) r.Apriori.level_candidates r.Apriori.level_frequent)

let test_secure_rotations_variant () =
  (* The Galois rotate-and-sum variant returns the same answer with one
     scalar ciphertext per candidate. *)
  let tx = planted 61 ~n:200 ~m:8 ~p_noise:0.15 ~p_pattern:0.5 in
  let minsup = 80 in
  let dep = Apriori.deploy ~rng:(Rng.of_int 61) (Config.standard ()) ~transactions:tx in
  let r_basic = Apriori.mine ~rng:(Rng.of_int 62) dep ~minsup in
  let r_rot = Apriori.mine ~rng:(Rng.of_int 63) ~use_rotations:true dep ~minsup in
  Alcotest.(check bool) "rotation variant matches plaintext" true
    (Apriori.matches_plaintext ~transactions:tx ~minsup r_rot);
  Alcotest.(check bool) "variants agree" true
    (r_basic.Apriori.frequent = r_rot.Apriori.frequent);
  (* One ciphertext per candidate vs blocks per candidate: B decrypts
     fewer values and the A->B link carries fewer bytes. *)
  Alcotest.(check bool) "fewer B decryptions" true
    (Util.Counters.decryptions r_rot.Apriori.counters_b
     < Util.Counters.decryptions r_basic.Apriori.counters_b
       * (200 + 63) / 64);
  Alcotest.(check bool) "less A->B traffic" true
    (Transcript.bytes_between r_rot.Apriori.transcript Transcript.Party_a Transcript.Party_b
     < Transcript.bytes_between r_basic.Apriori.transcript Transcript.Party_a
         Transcript.Party_b)

let test_secure_validation () =
  Alcotest.check_raises "non-binary" (Invalid_argument "Apriori.deploy: bits must be 0/1")
    (fun () -> ignore (Apriori.deploy (Config.standard ()) ~transactions:[| [| 3 |] |]));
  Alcotest.check_raises "empty" (Invalid_argument "Apriori.deploy: no transactions")
    (fun () -> ignore (Apriori.deploy (Config.standard ()) ~transactions:[||]));
  let dep = Apriori.deploy (Config.standard ()) ~transactions:tiny in
  Alcotest.check_raises "minsup" (Invalid_argument "Apriori.mine: minsup < 1")
    (fun () -> ignore (Apriori.mine dep ~minsup:0))

let () =
  Alcotest.run "apriori"
    [ ("plain",
       [ Alcotest.test_case "support" `Quick test_support;
         Alcotest.test_case "singletons" `Quick test_singletons;
         Alcotest.test_case "candidate join/prune" `Quick test_candidates_join;
         Alcotest.test_case "vs brute force" `Quick test_frequent_itemsets_exact;
         Alcotest.test_case "minsup boundaries" `Quick test_frequent_minsup_boundaries;
         Alcotest.test_case "max_size cap" `Quick test_max_size_cap ]);
      ("secure",
       [ Alcotest.test_case "textbook instance" `Quick test_secure_matches_textbook;
         Alcotest.test_case "planted pattern" `Quick test_secure_planted_pattern;
         Alcotest.test_case "spans blocks" `Quick test_secure_spans_blocks;
         Alcotest.test_case "leakage shape" `Quick test_secure_leakage_shape;
         Alcotest.test_case "rotation variant" `Quick test_secure_rotations_variant;
         Alcotest.test_case "validation" `Quick test_secure_validation ]) ]
