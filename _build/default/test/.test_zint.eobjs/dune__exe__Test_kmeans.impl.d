test/test_kmeans.ml: Alcotest Array Config Kmeans Kmeans_plain List Printf Synthetic Transcript Util
