test/test_knn.mli:
