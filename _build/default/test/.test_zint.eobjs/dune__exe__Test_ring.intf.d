test/test_ring.mli:
