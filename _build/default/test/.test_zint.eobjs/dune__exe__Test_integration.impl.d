test/test_integration.ml: Alcotest Array Bgv Config Cost Csv_io Distance Entities Filename Leakage List Params Plain_knn Preprocess Printf Protocol Sknn_m Synthetic Sys Transcript Util
