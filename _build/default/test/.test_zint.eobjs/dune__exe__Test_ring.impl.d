test/test_ring.ml: Alcotest Array Crt Float Int64 List Mod64 Prime64 Printf QCheck QCheck_alcotest Rq Sampler Util Zint
