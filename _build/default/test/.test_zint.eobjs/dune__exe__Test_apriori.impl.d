test/test_apriori.ml: Alcotest Apriori Apriori_plain Array Config List Printf Transcript Util
