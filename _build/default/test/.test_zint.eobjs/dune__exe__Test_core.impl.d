test/test_core.ml: Alcotest Array Config Cost Entities Format Int64 Leakage List Masking Plain_knn Preprocess Printf Protocol QCheck QCheck_alcotest Synthetic Transcript Uci_like Util
