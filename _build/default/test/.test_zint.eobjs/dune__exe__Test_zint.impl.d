test/test_zint.ml: Alcotest Int64 List Printf QCheck QCheck_alcotest Stdlib String Util Zint
