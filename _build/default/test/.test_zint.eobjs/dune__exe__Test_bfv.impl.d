test/test_bfv.ml: Alcotest Array Bfv Format Int64 List Mod64 Option Params Plaintext Printf QCheck QCheck_alcotest Util
