test/test_util.ml: Alcotest Array Bytes Char Float Format Hashtbl Int64 List Printf QCheck QCheck_alcotest String Util
