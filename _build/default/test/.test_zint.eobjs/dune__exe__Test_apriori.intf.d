test/test_apriori.mli:
