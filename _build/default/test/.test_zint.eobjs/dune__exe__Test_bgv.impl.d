test/test_bgv.ml: Alcotest Array Bgv Bytes Int64 List Mod64 Option Params Plaintext Prime64 Printf QCheck QCheck_alcotest String Util
