test/test_baseline.ml: Alcotest Array Aspe Config Distance Lazy List Paillier Plain_knn Printf Protocol Sknn_m Smc Synthetic Transcript Util Zint
