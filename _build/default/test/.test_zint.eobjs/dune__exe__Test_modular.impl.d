test/test_modular.ml: Alcotest Array Int64 List Mod64 Ntt Ntt64 Prime64 Printf QCheck QCheck_alcotest Util Zint
