test/test_bgv.mli:
