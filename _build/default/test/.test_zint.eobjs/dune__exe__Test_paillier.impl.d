test/test_paillier.ml: Alcotest Lazy List Paillier QCheck QCheck_alcotest Util Zint
