test/test_netsim.ml: Alcotest List Transcript
