test/test_dataset.ml: Alcotest Array Csv_io Distance Filename Preprocess Synthetic Sys Uci_like Util
