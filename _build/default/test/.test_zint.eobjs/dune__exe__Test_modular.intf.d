test/test_modular.mli:
