test/test_bfv.mli:
