test/test_knn.ml: Alcotest Array Distance List Plain_knn Point QCheck QCheck_alcotest Synthetic Util
