examples/quickstart.mli:
