examples/location_search.mli:
