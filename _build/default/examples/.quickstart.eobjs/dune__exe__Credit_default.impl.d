examples/credit_default.ml: Array Config Format List Preprocess Protocol Synthetic Sys Transcript Uci_like Util
