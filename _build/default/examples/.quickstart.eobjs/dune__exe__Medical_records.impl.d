examples/medical_records.ml: Array Config Csv_io Distance Format Leakage List Preprocess Protocol Synthetic Sys Transcript Uci_like Util
