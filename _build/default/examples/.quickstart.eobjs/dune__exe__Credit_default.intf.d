examples/credit_default.mli:
