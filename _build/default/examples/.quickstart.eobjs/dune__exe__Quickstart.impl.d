examples/quickstart.ml: Array Config Format Leakage List Plain_knn Point Protocol Transcript Util
