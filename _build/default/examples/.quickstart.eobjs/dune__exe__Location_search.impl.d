examples/location_search.ml: Array Config Distance Format Leakage Point Protocol Sknn_m Synthetic Util
