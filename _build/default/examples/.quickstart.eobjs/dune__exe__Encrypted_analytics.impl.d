examples/encrypted_analytics.ml: Apriori Apriori_plain Array Config Format Kmeans List Point String Synthetic Util
