examples/encrypted_analytics.mli:
