(* The paper's second real-world workload: the credit-card default
   dataset, 30000 clients x 23 attributes (Figure 4's setting).

   This is the larger workload, so this example uses the dot-product
   layout (one ciphertext multiplication per database point — see
   Config) and, by default, a 3000-row sample; pass a row count to
   change it (30000 reproduces the paper scale).

   Run with:  dune exec examples/credit_default.exe [-- rows] *)

let () =
  let rows = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 3000 in
  let rng = Util.Rng.of_int 30000 in
  let raw = Uci_like.credit_default ~n:rows rng in
  let db = Preprocess.scale_to_max ~max_value:255 raw in
  Format.printf "Dataset: %d clients x %d attributes (%s)@." (Array.length db)
    (Array.length db.(0)) Uci_like.credit_default_spec.Uci_like.description;

  let config = Config.fast () in
  Format.printf "Protocol: %s layout (affine mask + cross-term randomiser)@."
    (Config.layout_name config.Config.layout);

  let deployment, deploy_s = Util.Timer.time (fun () -> Protocol.deploy ~rng config ~db) in
  Format.printf "Setup: %a (%d bytes of ciphertext shipped to Party A)@."
    Util.Timer.pp_duration deploy_s
    (let tr = Protocol.setup_transcript deployment in
     Transcript.bytes_between tr Transcript.Data_owner Transcript.Party_a);

  (* The paper reports 2-NN in under 2 minutes and 8-NN in 373 s at
     n = 30000; sweep a few k values to see the linear growth. *)
  List.iter
    (fun k ->
      let client = Synthetic.query_like rng db in
      let result, s = Util.Timer.time (fun () -> Protocol.query deployment ~query:client ~k) in
      Format.printf "@.%2d-NN: %a  exact=%b@." k Util.Timer.pp_duration s
        (Protocol.exact deployment ~db ~query:client result);
      List.iter
        (fun (name, ps) -> Format.printf "    %-20s %a@." name Util.Timer.pp_duration ps)
        result.Protocol.phase_seconds)
    [ 2; 8 ];

  (* A concrete use: find clients similar to a risky profile. *)
  let risky = Array.copy db.(0) in
  let result = Protocol.query deployment ~query:risky ~k:5 in
  Format.printf "@.5 clients most similar to the probe profile (attr 0..5):@.";
  Array.iter
    (fun p ->
      Format.printf "  ";
      Array.iteri (fun j v -> if j < 6 then Format.printf "%3d " v) p;
      Format.printf "…@.")
    result.Protocol.neighbours
