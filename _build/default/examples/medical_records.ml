(* The paper's first real-world workload: finding patient records that
   cluster near a query record, on data shaped like the UCI cervical
   cancer (risk factors) dataset — 858 patients x 32 attributes
   (Figure 3's setting).

   The container cannot download the real UCI file; this example uses
   the shape-faithful generator.  To run on the real data, preprocess it
   to non-negative integer CSV and pass the path as the first argument.

   Run with:  dune exec examples/medical_records.exe [-- path/to.csv] *)

let () =
  let rng = Util.Rng.of_int 858 in
  let raw =
    if Array.length Sys.argv > 1 then Csv_io.read ~has_header:true Sys.argv.(1)
    else Uci_like.cervical_cancer rng
  in
  Format.printf "Dataset: %d patient records x %d attributes (%s)@." (Array.length raw)
    (Array.length raw.(0)) Uci_like.cervical_cancer_spec.Uci_like.description;

  (* The paper preprocesses to non-negative integers; we additionally
     compress columns into 8-bit range so squared distances fit the
     masking envelope (DESIGN.md, fidelity note). *)
  let db = Preprocess.scale_to_max ~max_value:255 (Preprocess.shift_non_negative raw) in

  let config = Config.standard () in
  (match Config.validate config ~d:(Array.length db.(0)) with
   | Ok () -> ()
   | Error e -> failwith e);
  Format.printf "Protocol: %s layout, degree-%d masking polynomial@."
    (Config.layout_name config.Config.layout) config.Config.mask_degree;

  let (), setup_s = Util.Timer.time (fun () -> ()) in
  ignore setup_s;
  let deployment, deploy_s =
    Util.Timer.time (fun () -> Protocol.deploy ~rng config ~db)
  in
  Format.printf "Setup (keygen + database encryption): %a@." Util.Timer.pp_duration deploy_s;

  (* An 8-NN query, as in the paper's abstract (166 s on their testbed). *)
  let patient = Synthetic.query_like rng db in
  let k = 8 in
  let result, query_s = Util.Timer.time (fun () -> Protocol.query deployment ~query:patient ~k) in
  Format.printf "@.%d-NN query over %d encrypted records: %a@." k (Array.length db)
    Util.Timer.pp_duration query_s;
  List.iter
    (fun (name, s) -> Format.printf "  %-20s %a@." name Util.Timer.pp_duration s)
    result.Protocol.phase_seconds;

  Format.printf "@.Exact vs plaintext ground truth: %b@."
    (Protocol.exact deployment ~db ~query:patient result);

  (* The three nearest cohort records, attribute-compressed view. *)
  Format.printf "@.Nearest records (first 8 of %d attributes shown):@."
    (Array.length db.(0));
  Array.iteri
    (fun i p ->
      if i < 3 then begin
        Format.printf "  #%d: " (i + 1);
        Array.iteri (fun j v -> if j < 8 then Format.printf "%3d " v) p;
        Format.printf "…  (squared distance %d)@." (Distance.squared_euclidean patient p)
      end)
    result.Protocol.neighbours;

  (* Leakage audit: what the key-holder learned. *)
  let groups = Leakage.equidistant_group_sizes result.Protocol.view_b in
  Format.printf "@.Party B learned: k = %d and %d equidistant group(s)%s@." k
    (Array.length groups)
    (if Array.length groups = 0 then " — nothing else (Theorem 4.2)"
     else " (sizes visible, identities hidden by the permutation)");
  Format.printf "Communication A<->B: %d bytes in %d round@."
    (Transcript.bytes_between result.Protocol.transcript Transcript.Party_a Transcript.Party_b)
    (Transcript.rounds result.Protocol.transcript Transcript.Party_a Transcript.Party_b)
