(* Beyond k-NN: the paper's §7 closes with "we plan to extend our work
   to other data mining algorithms, including k-Means and Apriori".
   This example runs both extensions end to end on encrypted data and
   checks them against their plaintext references.

   Run with:  dune exec examples/encrypted_analytics.exe *)

let () =
  let rng = Util.Rng.of_int 7777 in

  (* --- Secure k-means: customer segmentation ---------------------- *)
  Format.printf "=== secure k-means: segmenting 240 encrypted customer profiles ===@.";
  let db = Synthetic.clustered rng ~n:240 ~d:4 ~clusters:3 ~spread:10.0 ~max_value:250 in
  let init = [| db.(0); db.(80); db.(160) |] in
  let deployment = Kmeans.deploy ~rng (Config.fast ()) ~db in
  let r = Kmeans.run ~rng deployment ~init in
  Format.printf "converged in %d iterations (%a); segment sizes: %a@." r.Kmeans.iterations
    Util.Timer.pp_duration r.Kmeans.seconds
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (Array.to_list r.Kmeans.sizes);
  Array.iteri
    (fun i c -> Format.printf "  segment %d centre: %a@." (i + 1) Point.pp c)
    r.Kmeans.centroids;
  Format.printf "identical to plaintext Lloyd's run: %b@."
    (Kmeans.matches_plaintext ~db ~init r);
  Format.printf "cloud-side view: B decrypted %d masked values, A touched only ciphertexts@.@."
    (Util.Counters.decryptions r.Kmeans.counters_b);

  (* --- Secure Apriori: market-basket mining ----------------------- *)
  Format.printf "=== secure Apriori: mining 500 encrypted shopping baskets ===@.";
  let items = 16 in
  let baskets =
    Array.init 500 (fun _ ->
        let row = Array.init items (fun _ -> if Util.Rng.float rng < 0.12 then 1 else 0) in
        (* bread+butter+milk bundle *)
        if Util.Rng.float rng < 0.35 then begin
          row.(0) <- 1; row.(1) <- 1; row.(2) <- 1
        end;
        (* beer+chips bundle *)
        if Util.Rng.float rng < 0.25 then begin
          row.(7) <- 1; row.(8) <- 1
        end;
        row)
  in
  let minsup = 100 in
  let dep = Apriori.deploy ~rng (Config.standard ()) ~transactions:baskets in
  let r = Apriori.mine ~rng dep ~minsup in
  Format.printf "frequent itemsets (support >= %d):@." minsup;
  List.iter
    (fun s ->
      if List.length s > 1 then
        Format.printf "  {%s}  (true support %d, hidden from both clouds)@."
          (String.concat ", " (List.map string_of_int s))
          (Apriori_plain.support s baskets))
    r.Apriori.frequent;
  Format.printf "matches plaintext Apriori: %b (%a)@."
    (Apriori.matches_plaintext ~transactions:baskets ~minsup r)
    Util.Timer.pp_duration r.Apriori.seconds;
  Array.iteri
    (fun i c ->
      Format.printf "  level %d: %d candidates tested, %d frequent@." (i + 1) c
        r.Apriori.level_frequent.(i))
    r.Apriori.level_candidates;
  Format.printf
    "SIMD batching at work: %d homomorphic multiplications total for %d baskets@."
    (Util.Counters.hom_muls r.Apriori.counters_a)
    (Array.length baskets)
