(* Quickstart: the whole secure k-NN pipeline on a database small enough
   to read by eye.

   Run with:  dune exec examples/quickstart.exe *)

let db =
  [| [| 10; 10 |]; [| 12; 11 |]; [| 200; 180 |]; [| 13; 9 |]; [| 100; 100 |];
     [| 210; 190 |]; [| 11; 14 |]; [| 95; 105 |] |]

let query = [| 12; 12 |]
let k = 3

let () =
  let config = Config.standard () in
  Format.printf "Configuration:@.  %a@.@." Config.pp config;

  (* Setup: the data owner generates keys, encrypts the database and
     hands the pieces to the two cloud parties. *)
  let deployment = Protocol.deploy ~rng:(Util.Rng.of_int 2024) config ~db in
  Format.printf "Database: %d points, %d dimensions, encrypted and stored at Party A@."
    (Protocol.db_size deployment) (Protocol.dimension deployment);

  (* One query. *)
  let result = Protocol.query deployment ~query ~k in
  Format.printf "@.Query %a, k = %d@." Point.pp query k;
  Format.printf "Encrypted protocol answered with:@.";
  Array.iter (fun p -> Format.printf "  %a@." Point.pp p) result.Protocol.neighbours;

  (* Check against the plaintext oracle. *)
  let truth = Plain_knn.knn ~k ~query db in
  Format.printf "@.Plaintext k-NN ground truth: ";
  Array.iter (fun i -> Format.printf "%a " Point.pp db.(i)) truth;
  Format.printf "@.Exact match (distance multiset): %b@."
    (Protocol.exact deployment ~db ~query result);

  (* What did it cost? *)
  Format.printf "@.Per-phase wall-clock:@.";
  List.iter
    (fun (name, s) -> Format.printf "  %-20s %a@." name Util.Timer.pp_duration s)
    result.Protocol.phase_seconds;
  Format.printf "@.Party A ops: %a@." Util.Counters.pp result.Protocol.counters_a;
  Format.printf "Party B ops: %a@." Util.Counters.pp result.Protocol.counters_b;
  Format.printf "@.Communication (one A<->B round, as the paper claims):@.%a@."
    Transcript.pp result.Protocol.transcript;

  (* What does the key-holding party actually see? *)
  Format.printf "@.Party B's view (masked, permuted distances):@.  ";
  Array.iter (fun v -> Format.printf "%Ld " v) (Leakage.view_multiset result.Protocol.view_b);
  Format.printf
    "@.True squared distances (never visible to either cloud):@.  ";
  Array.iter (fun d -> Format.printf "%d " d) (Plain_knn.distances ~query db);
  Format.printf "@."
