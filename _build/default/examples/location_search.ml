(* Location-based search: the taxi-for-hire scenario from the paper's
   §5.1 ("spatial databases and location-based search ... where the
   query looks for points within a small set of records").

   2-D pickup points clustered around city hotspots are stored encrypted
   in the cloud; a rider's encrypted position is matched to its k
   nearest drivers without the cloud learning positions, the result, or
   even whether the same rider asked twice.  This example also contrasts
   the two ciphertext layouts and the Paillier baseline on one instance.

   Run with:  dune exec examples/location_search.exe *)

let () =
  let rng = Util.Rng.of_int 4242 in
  (* 400 drivers around 6 hotspots on a 256x256 city grid. *)
  let db = Synthetic.clustered rng ~n:400 ~d:2 ~clusters:6 ~spread:12.0 ~max_value:255 in
  let rider = Synthetic.query_like rng db in
  let k = 4 in
  Format.printf "City grid 256x256, %d drivers, rider at %a, k = %d@.@." (Array.length db)
    Point.pp rider k;

  let run name config =
    let deployment, setup_s = Util.Timer.time (fun () -> Protocol.deploy ~rng config ~db) in
    let result, query_s = Util.Timer.time (fun () -> Protocol.query deployment ~query:rider ~k) in
    Format.printf "%-16s setup %a, query %a, exact=%b@." name Util.Timer.pp_duration setup_s
      Util.Timer.pp_duration query_s
      (Protocol.exact deployment ~db ~query:rider result);
    result
  in
  let result = run "per-coordinate" (Config.standard ()) in
  let _ = run "dot-product" (Config.fast ()) in

  Format.printf "@.Nearest drivers:@.";
  Array.iter
    (fun p ->
      Format.printf "  %a  (%.1f grid units away)@." Point.pp p
        (sqrt (float_of_int (Distance.squared_euclidean rider p))))
    result.Protocol.neighbours;

  (* Same instance through the Paillier-based state of the art the paper
     compares against (scaled down: the baseline is the slow one). *)
  let base_db = Array.sub db 0 100 in
  let dep_b, bsetup = Util.Timer.time (fun () -> Sknn_m.deploy ~rng ~modulus_bits:128 ~db:base_db ()) in
  let rb, bquery = Util.Timer.time (fun () -> Sknn_m.query dep_b ~query:rider ~k) in
  Format.printf
    "@.Yousef et al. baseline on the first %d drivers: setup %a, query %a, exact=%b@."
    (Array.length base_db) Util.Timer.pp_duration bsetup Util.Timer.pp_duration bquery
    (Sknn_m.exact dep_b ~db:base_db ~query:rider rb);
  Format.printf "  baseline C1<->C2 interactions: %d (ours: 1 round)@." rb.Sknn_m.interactions;

  (* Search-pattern privacy: ask twice, see different masked views. *)
  let deployment = Protocol.deploy ~rng (Config.fast ()) ~db in
  let r1 = Protocol.query deployment ~query:rider ~k in
  let r2 = Protocol.query deployment ~query:rider ~k in
  Format.printf
    "@.Same rider asks twice: masked views identical? %b (fresh mask + permutation per query)@."
    (Leakage.view_multiset r1.Protocol.view_b = Leakage.view_multiset r2.Protocol.view_b)
